package systems

import (
	"fmt"
	"reflect"
	"testing"

	"effpi/internal/lts"
	"effpi/internal/typelts"
	"effpi/internal/types"
	"effpi/internal/verify"
)

// The randomized differential suite: RandomSystem supplies the scenario
// diversity, the engines supply independent answers, and verify.Replay
// supplies the oracle for every negative verdict. genMaxStates bounds the
// occasional blow-up system; explorations that exceed it must do so
// identically in every engine.
const genMaxStates = 1 << 14

func genSeedCount(t *testing.T) int {
	if testing.Short() {
		return 40
	}
	return 200
}

// TestRandomSystemsWellFormedAndDeterministic: every generated system is
// admissible (guarded finite-control π-type), and the generator is a pure
// function of the seed.
func TestRandomSystemsWellFormedAndDeterministic(t *testing.T) {
	n := genSeedCount(t)
	for seed := 0; seed < n; seed++ {
		s := RandomSystem(int64(seed))
		if err := verify.Admissible(s.Env, s.Type); err != nil {
			t.Fatalf("seed %d: not admissible: %v", seed, err)
		}
		again := RandomSystem(int64(seed))
		if types.Canon(s.Type) != types.Canon(again.Type) {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
		if len(s.Props) != 6 {
			t.Fatalf("seed %d: want 6 property instances, got %d", seed, len(s.Props))
		}
	}
}

// publicFingerprint renders the determinism-relevant content of an LTS
// through the public API: state order (canonical forms), alphabet order
// (label keys), and the per-state edge lists.
func publicFingerprint(m *lts.LTS) string {
	out := fmt.Sprintf("initial=%d truncated=%v\n", m.Initial, m.Truncated)
	for i, s := range m.States {
		out += fmt.Sprintf("S%d %s\n", i, types.Canon(s))
	}
	for i, l := range m.Labels {
		out += fmt.Sprintf("L%d %s\n", i, l.Key())
	}
	for s := range m.States {
		for _, e := range m.Out(s) {
			out += fmt.Sprintf("e %d %d %d\n", s, e.Label, e.Dst)
		}
	}
	return out
}

// TestRandomDifferentialExplore: serial vs parallel exploration of every
// generated system is byte-identical (state numbering, alphabet, edges),
// including identical truncation behaviour at the state bound.
func TestRandomDifferentialExplore(t *testing.T) {
	n := genSeedCount(t)
	for seed := 0; seed < n; seed++ {
		s := RandomSystem(int64(seed))
		explore := func(par int) (*lts.LTS, error) {
			sem := &typelts.Semantics{Env: s.Env, Observable: map[string]bool{}, WitnessOnly: true}
			return lts.Explore(sem, s.Type, lts.Options{MaxStates: genMaxStates, Parallelism: par})
		}
		serial, serialErr := explore(1)
		want := publicFingerprint(serial)
		for _, par := range []int{2, 8} {
			m, err := explore(par)
			if (err == nil) != (serialErr == nil) {
				t.Fatalf("seed %d par %d: err=%v, serial err=%v", seed, par, err, serialErr)
			}
			if got := publicFingerprint(m); got != want {
				t.Fatalf("seed %d par %d: parallel LTS differs from serial\n--- serial ---\n%s--- parallel ---\n%s", seed, par, want, got)
			}
		}
	}
}

// TestRandomDifferentialVerdictsAndWitnesses is the heart of the fuzz
// suite: for every generated system, VerifyAllWith at Parallelism 1, 2
// and 8 must agree on every verdict (and on every error), every FAIL of
// an LTL-checked property must carry a witness that verify.Replay
// validates, and the witnesses themselves must be identical across worker
// counts.
func TestRandomDifferentialVerdictsAndWitnesses(t *testing.T) {
	n := genSeedCount(t)
	fails, systems := 0, 0
	for seed := 0; seed < n; seed++ {
		s := RandomSystem(int64(seed))
		base, baseErr := verify.VerifyAllWith(s.Env, s.Type, s.Props, verify.AllOptions{MaxStates: genMaxStates, Parallelism: 1})
		for _, par := range []int{2, 8} {
			got, err := verify.VerifyAllWith(s.Env, s.Type, s.Props, verify.AllOptions{MaxStates: genMaxStates, Parallelism: par})
			if (err == nil) != (baseErr == nil) || (err != nil && err.Error() != baseErr.Error()) {
				t.Fatalf("seed %d par %d: err=%v, serial err=%v", seed, par, err, baseErr)
			}
			if len(got) != len(base) {
				t.Fatalf("seed %d par %d: %d outcomes vs %d serial", seed, par, len(got), len(base))
			}
			for i := range base {
				if got[i].Holds != base[i].Holds {
					t.Errorf("seed %d par %d %s: verdict %v, serial %v", seed, par, base[i].Property, got[i].Holds, base[i].Holds)
				}
				if got[i].States != base[i].States {
					t.Errorf("seed %d par %d %s: states %d, serial %d", seed, par, base[i].Property, got[i].States, base[i].States)
				}
				if !reflect.DeepEqual(rawWitness(got[i]), rawWitness(base[i])) {
					t.Errorf("seed %d par %d %s: witness differs from serial engine's", seed, par, base[i].Property)
				}
			}
		}
		if baseErr != nil {
			continue // bound exceeded identically everywhere: nothing to replay
		}
		systems++
		for _, o := range base {
			if o.Holds {
				continue
			}
			if o.Property.Kind == verify.EventualOutput {
				if o.Witness != nil {
					t.Errorf("seed %d %s: existential failure must not carry a witness", seed, o.Property)
				}
				continue
			}
			fails++
			if o.Witness == nil {
				t.Fatalf("seed %d %s: FAIL without witness", seed, o.Property)
			}
			if err := verify.Replay(o); err != nil {
				t.Errorf("seed %d %s: witness does not replay: %v", seed, o.Property, err)
			}
		}
	}
	if fails == 0 {
		t.Fatalf("generator produced no failing properties across %d verified systems — the witness oracle was never exercised", systems)
	}
	t.Logf("replayed %d failing properties across %d systems", fails, systems)
}

func rawWitness(o *verify.Outcome) interface{} {
	if o.Witness == nil {
		return nil
	}
	return o.Witness.Raw
}

// TestRandomDifferentialReduction extends the differential suite to the
// Reduce stage: every seeded system is verified with reduction on and
// off at parallelism 1, 2 and 8. Verdicts (and errors) must be identical
// everywhere, every reduced FAIL must carry a lifted witness that the
// replay oracle validates against the CONCRETE LTS, the lifted witnesses
// must be identical across worker counts (the quotient, like the LTS, is
// schedule-independent), and the quotient must never be larger than the
// state space it abstracts.
func TestRandomDifferentialReduction(t *testing.T) {
	n := genSeedCount(t)
	fails, systems := 0, 0
	for seed := 0; seed < n; seed++ {
		s := RandomSystem(int64(seed))
		base, baseErr := verify.VerifyAllWith(s.Env, s.Type, s.Props, verify.AllOptions{MaxStates: genMaxStates, Parallelism: 1})
		var redBase []*verify.Outcome
		for _, par := range []int{1, 2, 8} {
			red, err := verify.VerifyAllWith(s.Env, s.Type, s.Props, verify.AllOptions{
				MaxStates: genMaxStates, Parallelism: par, Reduction: verify.ReduceStrong})
			if (err == nil) != (baseErr == nil) || (err != nil && err.Error() != baseErr.Error()) {
				t.Fatalf("seed %d par %d: reduced err=%v, unreduced serial err=%v", seed, par, err, baseErr)
			}
			if err != nil {
				break // bound exceeded identically everywhere: nothing to compare
			}
			if par == 1 {
				redBase = red
			}
			for i := range base {
				if red[i].Holds != base[i].Holds {
					t.Errorf("seed %d par %d %s: reduced verdict %v, unreduced %v", seed, par, base[i].Property, red[i].Holds, base[i].Holds)
				}
				if red[i].States != base[i].States {
					t.Errorf("seed %d par %d %s: reduced States %d, unreduced %d", seed, par, base[i].Property, red[i].States, base[i].States)
				}
				if red[i].ReducedStates > red[i].States {
					t.Errorf("seed %d par %d %s: quotient larger than the state space (%d > %d)", seed, par, base[i].Property, red[i].ReducedStates, red[i].States)
				}
				// ReducedStates is 0 when no Reduce stage ran: always for
				// ev-usage (existential, no formula) and for formulas that
				// simplify to ⊤ (the generator produces e.g. non-usage
				// probes with empty use-sets); when a quotient WAS
				// checked, its size must agree across worker counts.
				if base[i].Property.Kind == verify.EventualOutput && red[i].ReducedStates != 0 {
					t.Errorf("seed %d par %d %s: ev-usage must not reduce, got %d", seed, par, base[i].Property, red[i].ReducedStates)
				}
				if red[i].ReducedStates != redBase[i].ReducedStates {
					t.Errorf("seed %d par %d %s: ReducedStates=%d, serial reduced run says %d", seed, par, base[i].Property, red[i].ReducedStates, redBase[i].ReducedStates)
				}
				if !reflect.DeepEqual(rawWitness(red[i]), rawWitness(redBase[i])) {
					t.Errorf("seed %d par %d %s: lifted witness differs from the serial reduced run's", seed, par, base[i].Property)
				}
			}
		}
		if baseErr != nil {
			continue
		}
		systems++
		for _, o := range redBase {
			if o.Holds || o.Property.Kind == verify.EventualOutput {
				continue
			}
			fails++
			if o.Witness == nil {
				t.Fatalf("seed %d %s: reduced FAIL without witness", seed, o.Property)
			}
			// Replay validates structurally against o.LTS — the concrete
			// LTS (the Reduce stage keeps it on the outcome) — and
			// semantically against a re-translated property automaton.
			if o.LTS == nil || o.LTS.Len() != o.States {
				t.Fatalf("seed %d %s: reduced outcome does not carry the concrete LTS", seed, o.Property)
			}
			if err := verify.Replay(o); err != nil {
				t.Errorf("seed %d %s: lifted witness does not replay on the concrete LTS: %v", seed, o.Property, err)
			}
		}
	}
	if fails == 0 {
		t.Fatalf("no failing properties across %d reduced systems — the lifting oracle was never exercised", systems)
	}
	t.Logf("replayed %d lifted witnesses across %d systems", fails, systems)
}

// TestRandomEarlyExitAgreesWithFull: on-the-fly (early-exit) checking of
// the symbolically compilable schemas must reach the same verdict as the
// full explore-then-check pipeline on every generated system, never
// explore more states, and its witnesses must replay too.
func TestRandomEarlyExitAgreesWithFull(t *testing.T) {
	n := genSeedCount(t)
	for seed := 0; seed < n; seed++ {
		s := RandomSystem(int64(seed))
		for _, p := range s.Props {
			switch p.Kind {
			case verify.NonUsage, verify.DeadlockFree, verify.Reactive:
			default:
				continue
			}
			full, err := verify.Verify(verify.Request{Env: s.Env, Type: s.Type, Property: p, MaxStates: genMaxStates, Parallelism: 1})
			early, eerr := verify.Verify(verify.Request{Env: s.Env, Type: s.Type, Property: p, MaxStates: genMaxStates, EarlyExit: true})
			if (err == nil) != (eerr == nil) {
				t.Fatalf("seed %d %s: full err=%v, early err=%v", seed, p, err, eerr)
			}
			if err != nil {
				continue
			}
			if !early.EarlyExit {
				t.Fatalf("seed %d %s: early-exit request did not take the on-the-fly path", seed, p)
			}
			if early.Holds != full.Holds {
				t.Errorf("seed %d %s: early verdict %v, full %v", seed, p, early.Holds, full.Holds)
			}
			if early.States > full.States {
				t.Errorf("seed %d %s: early exit discovered %d states, full pipeline %d", seed, p, early.States, full.States)
			}
			if !early.Holds {
				if err := verify.Replay(early); err != nil {
					t.Errorf("seed %d %s: early-exit witness does not replay: %v", seed, p, err)
				}
			}
		}
	}
}
