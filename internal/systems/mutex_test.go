package systems

import (
	"fmt"
	"testing"

	"effpi/internal/lts"
	"effpi/internal/mucalc"
	"effpi/internal/typelts"
	"effpi/internal/types"
	"effpi/internal/verify"
)

// TestRaceDeliversEitherChannel reproduces the §6 discussion: in the
// racing composition, either y or z may replace the receiver's parameter
// — the LTS must contain a communication for each, and the continuation
// after each one uses the delivered channel.
func TestRaceDeliversEitherChannel(t *testing.T) {
	s := Race()
	// x stays internal (the race is a synchronisation); y and z are
	// observable so the winner's continuation output is visible.
	sem := &typelts.Semantics{Env: s.Env, Observable: map[string]bool{"y": true, "z": true}, WitnessOnly: true}
	m, err := lts.Explore(sem, s.Type, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	delivered := map[string]bool{}
	for _, l := range m.Alphabet() {
		if c, ok := l.(typelts.Comm); ok {
			if p, ok := c.Payload.(types.Var); ok {
				delivered[p.Name] = true
			}
		}
	}
	if !delivered["y"] || !delivered["z"] {
		t.Errorf("the race must deliver both y and z; got %v", delivered)
	}
	// After either delivery, the winner is used: outputs on y and z
	// appear in the alphabet (the loser's send stays pending — the race
	// leaves one sender unserved, which is exactly the non-confluence).
	u := verify.NewUses(s.Env, m)
	if len(u.OutputUses("y")) == 0 || len(u.OutputUses("z")) == 0 {
		t.Error("the received channel must be used in the continuation")
	}
}

// enterExit extracts the enter (Int payload) and exit (Str payload)
// action sets of worker i's critical-section probe channel.
func enterExit(m *lts.LTS, i int) (enter, exit mucalc.ActionSet) {
	name := fmt.Sprintf("crit%d", i)
	var enters, exits []typelts.Label
	for _, l := range m.Alphabet() {
		o, ok := l.(typelts.Output)
		if !ok {
			continue
		}
		v, ok := o.Subject.(types.Var)
		if !ok || v.Name != name {
			continue
		}
		switch o.Payload.(type) {
		case types.Int:
			enters = append(enters, l)
		case types.Str:
			exits = append(exits, l)
		}
	}
	return mucalc.LabelSet("enter"+name, enters...), mucalc.LabelSet("exit"+name, exits...)
}

// mutualExclusion builds the custom formula
// □(enter_i ⇒ X((−enter_j) U exit_i)) for all i ≠ j — not one of the six
// Fig. 7 schemas, showing the extensible property language the paper
// claims (§6: "an extensible set of µ-calculus properties").
func mutualExclusion(m *lts.LTS, workers int) mucalc.Formula {
	var phi mucalc.Formula = mucalc.True{}
	for i := 0; i < workers; i++ {
		enterI, exitI := enterExit(m, i)
		var othersEnter []mucalc.ActionSet
		for j := 0; j < workers; j++ {
			if j != i {
				e, _ := enterExit(m, j)
				othersEnter = append(othersEnter, e)
			}
		}
		blocked := othersEnter[0]
		for _, o := range othersEnter[1:] {
			blocked = mucalc.UnionSet(blocked, o)
		}
		clause := mucalc.Box(mucalc.Implies(
			mucalc.Prop{Set: enterI},
			mucalc.Next{F: mucalc.Until{
				L: mucalc.NegProp{Set: blocked},
				R: mucalc.Prop{Set: exitI},
			}},
		))
		if _, ok := phi.(mucalc.True); ok {
			phi = clause
		} else {
			phi = mucalc.And{L: phi, R: clause}
		}
	}
	return phi
}

func exploreWithCrits(t *testing.T, s *System, workers int) *lts.LTS {
	t.Helper()
	obs := map[string]bool{}
	for i := 0; i < workers; i++ {
		obs[fmt.Sprintf("crit%d", i)] = true
	}
	sem := &typelts.Semantics{Env: s.Env, Observable: obs, WitnessOnly: true}
	m, err := lts.Explore(sem, s.Type, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMutexMutualExclusion: the lock-guarded workers satisfy mutual
// exclusion.
func TestMutexMutualExclusion(t *testing.T) {
	for _, workers := range []int{2, 3} {
		s := Mutex(workers)
		m := exploreWithCrits(t, s, workers)
		phi := mutualExclusion(m, workers)
		r := mucalc.Check(m, phi)
		if !r.Holds {
			t.Errorf("%s: mutual exclusion must hold; counterexample %+v", s.Name, r.Counterexample)
		}
	}
}

// TestBrokenMutexViolates: removing the lock lets critical sections
// overlap, and the checker finds the interleaving.
func TestBrokenMutexViolates(t *testing.T) {
	const workers = 2
	env := types.NewEnv()
	for i := 0; i < workers; i++ {
		env = env.MustExtend(fmt.Sprintf("crit%d", i), types.ChanIO{Elem: types.Union{L: types.Int{}, R: types.Str{}}})
	}
	var comps []types.Type
	for i := 0; i < workers; i++ {
		crit := fmt.Sprintf("crit%d", i)
		comps = append(comps, types.Rec{Var: "t", Body: out(crit, types.Int{},
			out(crit, types.Str{}, types.RecVar{Name: "t"}))})
	}
	s := &System{Name: "broken mutex", Env: env, Type: types.ParOf(comps...)}
	m := exploreWithCrits(t, s, workers)
	phi := mutualExclusion(m, workers)
	r := mucalc.Check(m, phi)
	if r.Holds {
		t.Error("unguarded critical sections must violate mutual exclusion")
	}
	if r.Counterexample == nil {
		t.Error("expected an interleaving counterexample")
	}
}

// TestMutexDeadlockFree: the single-token mutex protocol never deadlocks.
func TestMutexDeadlockFree(t *testing.T) {
	s := Mutex(2)
	o, err := verify.Verify(verify.Request{Env: s.Env, Type: s.Type,
		Property: verify.Property{Kind: verify.DeadlockFree, Channels: []string{"crit0", "crit1"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds {
		t.Errorf("mutex must be deadlock-free: %+v", o.Counterexample)
	}
}
