// Package systems builds the type-level models of the verification
// benchmarks in Fig. 9 of the paper: the payment-with-audit service of §1
// composed with clients, Dijkstra's dining philosophers (deadlocking and
// fixed variants), Savina-style ping-pong pairs (with and without channel
// passing), and token rings. Each System carries the property instances
// of the six Fig. 9 columns and the verdicts the paper reports, used as
// golden expectations by the test suite.
package systems

import (
	"fmt"

	"effpi/internal/types"
	"effpi/internal/verify"
)

// System is one Fig. 9 benchmark row.
type System struct {
	Name string
	Env  *types.Env
	Type types.Type
	// Props holds one property instance per Fig. 9 column, in column
	// order (deadlock-free, ev-usage, forwarding, non-usage, reactive,
	// responsive).
	Props []verify.Property
	// Expected maps each property kind to the verdict published in
	// Fig. 9.
	Expected map[verify.Kind]bool
	// PaperStates is the state count reported in Fig. 9 (0 if the paper
	// only gives a bound).
	PaperStates int
}

func tv(n string) types.Type { return types.Var{Name: n} }

func thunk(t types.Type) types.Type { return types.Thunk(t) }

func out(ch string, payload, cont types.Type) types.Type {
	return types.Out{Ch: tv(ch), Payload: payload, Cont: thunk(cont)}
}

func in(ch, param string, dom, cont types.Type) types.Type {
	return types.In{Ch: tv(ch), Cont: types.Pi{Var: param, Dom: dom, Cod: cont}}
}

// PaymentAudit builds the §1 payment service with auditing, composed with
// an auditor and n looping clients (the "Pay & audit + n clients" rows).
//
//	service  = µt. i[m, Π(p: co[str]) ( o[p, str, t] ∨ o[aud, p̱, o[p, str, t]] )]
//	auditor  = µt. i[aud, Π(a: co[str]) t]
//	client_i = µt. o[m, c̱ᵢ, i[cᵢ, Π(r: str) t]]
//
// The service either rejects (replies immediately) or accepts (audits by
// forwarding the payer's channel, then replies) — the dependent types
// track the payer's reply channel p across the audit, exactly the Akka
// Typed use case of Fig. 1.
func PaymentAudit(clients int) *System {
	respT := types.Str{}
	payT := types.ChanO{Elem: respT} // a Pay message carries the reply channel

	env := types.NewEnv()
	env = env.MustExtend("m", types.ChanIO{Elem: payT})
	env = env.MustExtend("aud", types.ChanIO{Elem: payT})
	clientNames := make([]string, clients)
	for i := range clientNames {
		clientNames[i] = fmt.Sprintf("c%d", i+1)
		env = env.MustExtend(clientNames[i], types.ChanIO{Elem: respT})
	}

	reply := func(cont types.Type) types.Type {
		return types.Out{Ch: tv("p"), Payload: respT, Cont: thunk(cont)}
	}
	service := types.Rec{Var: "t", Body: in("m", "p", payT,
		types.Union{
			L: reply(types.RecVar{Name: "t"}), // reject
			R: out("aud", tv("p"), // accept: audit, then reply
				reply(types.RecVar{Name: "t"})),
		})}

	auditor := types.Rec{Var: "t", Body: in("aud", "a", payT, types.RecVar{Name: "t"})}

	comps := []types.Type{service, auditor}
	for _, c := range clientNames {
		client := types.Rec{Var: "t", Body: out("m", tv(c),
			in(c, "r", respT, types.RecVar{Name: "t"}))}
		comps = append(comps, client)
	}

	paperStates := map[int]int{8: 3328, 10: 13312, 12: 53248}
	return &System{
		Name: fmt.Sprintf("Pay & audit + %d clients", clients),
		Env:  env,
		Type: types.ParOf(comps...),
		Props: closedProps([]verify.Property{
			{Kind: verify.DeadlockFree, Channels: []string{"m"}},
			{Kind: verify.EventualOutput, Channels: []string{"aud"}},
			{Kind: verify.Forwarding, From: "m", To: "aud"},
			{Kind: verify.NonUsage, Channels: []string{"aud"}},
			{Kind: verify.Reactive, From: "m"},
			{Kind: verify.Responsive, From: "m"},
		}),
		Expected: map[verify.Kind]bool{
			verify.DeadlockFree:   true,
			verify.EventualOutput: true,
			verify.Forwarding:     false,
			verify.NonUsage:       false,
			verify.Reactive:       true,
			verify.Responsive:     true,
		},
		PaperStates: paperStates[clients],
	}
}

// DiningPhilosophers builds n philosophers and n forks. Forks are token
// processes: offer the fork, await its return. In the deadlocking variant
// every philosopher grabs the left fork first; the fixed variant breaks
// the symmetry (philosopher 0 grabs right first), the classic resource-
// ordering solution. The types cover locking/mutex protocols, which the
// paper highlights as beyond confluent session types (§6).
//
//	fork_i = µt. o[fᵢ, (), i[fᵢ, Π(u: ()) t]]
//	phil_i = µt. i[first, Π(u) i[second, Π(u′) o[first, (), o[second, (), t]]]]
func DiningPhilosophers(n int, deadlock bool) *System {
	env := types.NewEnv()
	forks := make([]string, n)
	for i := range forks {
		forks[i] = fmt.Sprintf("f%d", i)
		env = env.MustExtend(forks[i], types.ChanIO{Elem: types.Unit{}})
	}
	unit := types.Unit{}

	var comps []types.Type
	for i := 0; i < n; i++ {
		fork := types.Rec{Var: "t", Body: out(forks[i], unit,
			in(forks[i], "u", unit, types.RecVar{Name: "t"}))}
		comps = append(comps, fork)
	}
	for i := 0; i < n; i++ {
		first, second := forks[i], forks[(i+1)%n]
		if !deadlock && i == 0 {
			first, second = second, first // symmetry-breaking fix
		}
		phil := types.Rec{Var: "t", Body: in(first, "u", unit,
			in(second, "u2", unit,
				out(first, unit,
					out(second, unit, types.RecVar{Name: "t"}))))}
		comps = append(comps, phil)
	}

	variant := "no deadlock"
	if deadlock {
		variant = "deadlock"
	}
	paperStates := map[int]int{4: 4096, 5: 32768, 6: 262144}
	return &System{
		Name: fmt.Sprintf("Dining philos. (%d, %s)", n, variant),
		Env:  env,
		Type: types.ParOf(comps...),
		Props: closedProps([]verify.Property{
			{Kind: verify.DeadlockFree},
			{Kind: verify.EventualOutput, Channels: []string{"f0"}},
			{Kind: verify.Forwarding, From: "f0", To: "f1"},
			{Kind: verify.NonUsage, Channels: []string{"f0"}},
			{Kind: verify.Reactive, From: "f0"},
			{Kind: verify.Responsive, From: "f0"},
		}),
		Expected: map[verify.Kind]bool{
			verify.DeadlockFree:   !deadlock,
			verify.EventualOutput: true,
			verify.Forwarding:     false,
			verify.NonUsage:       false,
			verify.Reactive:       false,
			verify.Responsive:     false,
		},
		PaperStates: paperStates[n],
	}
}

// PingPongPairs builds n independent request/response pairs. The plain
// variant exchanges string messages on fixed channels (no channel
// passing); the responsive variant is Ex. 2.2's channel-passing protocol,
// where each pinger sends its own mailbox and the ponger replies through
// the received reference — which is what makes responsiveness provable.
func PingPongPairs(n int, responsive bool) *System {
	env := types.NewEnv()
	var comps []types.Type
	str := types.Str{}
	for i := 1; i <= n; i++ {
		z := fmt.Sprintf("z%d", i)
		y := fmt.Sprintf("y%d", i)
		if responsive {
			env = env.MustExtend(z, types.ChanIO{Elem: types.ChanO{Elem: str}})
			env = env.MustExtend(y, types.ChanIO{Elem: str})
			pinger := out(z, tv(y), in(y, "r", str, types.Nil{}))
			ponger := types.In{Ch: tv(z), Cont: types.Pi{Var: "replyTo", Dom: types.ChanO{Elem: str},
				Cod: types.Out{Ch: tv("replyTo"), Payload: str, Cont: thunk(types.Nil{})}}}
			comps = append(comps, pinger, ponger)
		} else {
			env = env.MustExtend(z, types.ChanIO{Elem: str})
			env = env.MustExtend(y, types.ChanIO{Elem: str})
			pinger := out(z, str, in(y, "r", str, types.Nil{}))
			ponger := in(z, "s", str, out(y, str, types.Nil{}))
			comps = append(comps, pinger, ponger)
		}
	}

	variant := ""
	if responsive {
		variant = ", responsive"
	}
	paperStates := 0
	if responsive {
		paperStates = map[int]int{6: 46656, 8: 1679616}[n]
	} else {
		paperStates = map[int]int{6: 4096, 8: 65536, 10: 1048576}[n]
	}
	return &System{
		Name: fmt.Sprintf("Ping-pong (%d pairs%s)", n, variant),
		Env:  env,
		Type: types.ParOf(comps...),
		Props: closedProps([]verify.Property{
			{Kind: verify.DeadlockFree},
			{Kind: verify.EventualOutput, Channels: []string{"y1"}},
			{Kind: verify.Forwarding, From: "z1", To: "y1"},
			{Kind: verify.NonUsage, Channels: []string{"z1"}},
			{Kind: verify.Reactive, From: "z1"},
			{Kind: verify.Responsive, From: "z1"},
		}),
		Expected: map[verify.Kind]bool{
			verify.DeadlockFree:   true,
			verify.EventualOutput: true,
			verify.Forwarding:     false,
			verify.NonUsage:       false,
			verify.Reactive:       false,
			verify.Responsive:     responsive,
		},
		PaperStates: paperStates,
	}
}

// Ring builds n members passing tokens around a ring; tokens are channel
// references, so each hop is a channel transmission tracked by the
// dependent types (which is what makes the forwarding property provable).
//
//	member_i = µt. i[cᵢ, Π(z: cio[()]) o[c_{i+1 mod n}, ẕ, t]]
//
// The first `tokens` members start holding a token.
func Ring(n, tokens int) *System {
	env := types.NewEnv()
	chans := make([]string, n)
	tokT := types.ChanIO{Elem: types.Unit{}}
	for i := range chans {
		chans[i] = fmt.Sprintf("c%d", i)
		env = env.MustExtend(chans[i], types.ChanIO{Elem: tokT})
	}
	tokNames := make([]string, tokens)
	for j := range tokNames {
		tokNames[j] = fmt.Sprintf("tok%d", j+1)
		env = env.MustExtend(tokNames[j], tokT)
	}

	var comps []types.Type
	for i := 0; i < n; i++ {
		next := chans[(i+1)%n]
		member := types.Rec{Var: "t", Body: types.In{Ch: tv(chans[i]),
			Cont: types.Pi{Var: "z", Dom: tokT,
				Cod: types.Out{Ch: tv(next), Payload: tv("z"), Cont: thunk(types.RecVar{Name: "t"})}}}}
		if i < tokens {
			// This member starts holding a token: pass it on, then behave
			// as a regular member.
			comps = append(comps, types.Out{Ch: tv(next), Payload: tv(tokNames[i]), Cont: thunk(member)})
		} else {
			comps = append(comps, member)
		}
	}

	name := fmt.Sprintf("Ring (%d elements)", n)
	if tokens > 1 {
		name = fmt.Sprintf("Ring (%d elements, %d tokens)", n, tokens)
	}
	paperStates := map[[2]int]int{
		{10, 1}: 2048, {15, 1}: 65536, {10, 3}: 4096, {15, 3}: 131072,
	}
	return &System{
		Name: name,
		Env:  env,
		Type: types.ParOf(comps...),
		Props: closedProps([]verify.Property{
			{Kind: verify.DeadlockFree},
			{Kind: verify.EventualOutput, Channels: []string{"c1"}},
			{Kind: verify.Forwarding, From: "c1", To: "c2"},
			{Kind: verify.NonUsage, Channels: []string{"c1"}},
			{Kind: verify.Reactive, From: "c1"},
			{Kind: verify.Responsive, From: "c1"},
		}),
		Expected: map[verify.Kind]bool{
			verify.DeadlockFree:   true,
			verify.EventualOutput: true,
			verify.Forwarding:     true,
			verify.NonUsage:       false,
			verify.Reactive:       true,
			verify.Responsive:     false,
		},
		PaperStates: paperStates[[2]int{n, tokens}],
	}
}

// Fig9Systems returns all nineteen benchmark rows of Fig. 9 in the
// paper's order.
func Fig9Systems() []*System {
	return []*System{
		PaymentAudit(8),
		PaymentAudit(10),
		PaymentAudit(12),
		DiningPhilosophers(4, true),
		DiningPhilosophers(4, false),
		DiningPhilosophers(5, true),
		DiningPhilosophers(5, false),
		DiningPhilosophers(6, true),
		DiningPhilosophers(6, false),
		PingPongPairs(6, false),
		PingPongPairs(6, true),
		PingPongPairs(8, false),
		PingPongPairs(8, true),
		PingPongPairs(10, false),
		PingPongPairs(10, true),
		Ring(10, 1),
		Ring(15, 1),
		Ring(10, 3),
		Ring(15, 3),
	}
}

// LargeSystems returns benchmark rows beyond the sizes published in
// Fig. 9, sized for the parallel verification engine: the paper's table
// stops where the serial mCRL2 pipeline got slow, but the multi-worker
// explorer has headroom for another philosopher, another ping-pong pair
// and a wider ring. Verdict expectations follow the same schemas as the
// paper's rows (they are size-independent); PaperStates is 0 because the
// paper does not report these instances. The rows are slow by unit-test
// standards — gate them behind testing.Short() and cmd/mcbench's
// -skip-slow.
func LargeSystems() []*System {
	return []*System{
		DiningPhilosophers(7, true),
		DiningPhilosophers(7, false),
		DiningPhilosophers(8, false),
		DiningPhilosophers(8, true),
		DiningPhilosophers(9, false),
		DiningPhilosophers(10, false),
		DiningPhilosophers(10, true),
		PingPongPairs(12, false),
		Ring(16, 1),
		Ring(16, 4),
	}
}

// closedProps marks every property for closed-composition verification:
// the Fig. 9 systems are self-contained, so all interactions are internal
// synchronisations (see verify.Property.Closed).
func closedProps(props []verify.Property) []verify.Property {
	for i := range props {
		props[i].Closed = true
	}
	return props
}
