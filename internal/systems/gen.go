// Random well-formed system generation for fuzz-style differential
// testing: RandomSystem deterministically derives a small closed system —
// environment, parallel composition of bounded recursive components, and
// the six Fig. 9 property instances — from a seed. The generator is the
// scenario-diversity engine behind the differential test suite: serial
// vs parallel exploration equivalence, parallelism-invariant verdicts,
// and replay-validated witnesses are all asserted over its output.
package systems

import (
	"fmt"
	"math/rand"

	"effpi/internal/types"
	"effpi/internal/verify"
)

// RandomSystem deterministically generates the seed-th member of a family
// of small, well-formed, closed systems. The same seed always yields the
// same system (the generator draws from a seeded PRNG and never consults
// the clock), and every generated system passes verify.Admissible: a
// guarded, finite-control π-type without proc.
//
// The shape space covers the verification engine's interesting paths:
// plain channels (unit payloads), carrier channels transmitting channel
// references (the dependent-type tracking of Ex. 4.3 — received
// references may be used for output), internal choice (unions), bounded
// µ-recursion, and components that terminate, loop, or block forever —
// so generated systems deadlock, starve and misbehave in diverse ways,
// which is exactly what a witness-extraction test suite wants.
func RandomSystem(seed int64) *System {
	for attempt := 0; ; attempt++ {
		g := &generator{rng: rand.New(rand.NewSource(seed*1_000_003 + int64(attempt)))}
		s := g.system(seed)
		if verify.Admissible(s.Env, s.Type) == nil {
			return s
		}
		if attempt >= 100 {
			// The grammar below is admissible by construction; reaching
			// this means the generator and the well-formedness rules have
			// drifted apart, which a test must catch loudly.
			panic(fmt.Sprintf("systems: RandomSystem(%d) cannot produce an admissible system", seed))
		}
	}
}

// RandomSystems generates seeds 0..n-1.
func RandomSystems(n int) []*System {
	out := make([]*System, n)
	for i := range out {
		out[i] = RandomSystem(int64(i))
	}
	return out
}

type generator struct {
	rng      *rand.Rand
	plain    []string // ChanIO[Unit] channels
	carriers []string // ChanIO[ChanIO[Unit]] channels
	fresh    int
}

func (g *generator) freshVar(prefix string) string {
	g.fresh++
	return fmt.Sprintf("%s%d", prefix, g.fresh)
}

func (g *generator) pick(xs []string) string { return xs[g.rng.Intn(len(xs))] }

func (g *generator) system(seed int64) *System {
	env := types.NewEnv()
	g.plain = nil
	g.carriers = nil
	unit := types.Unit{}
	tokT := types.ChanIO{Elem: unit}

	nPlain := 2 + g.rng.Intn(3) // 2..4
	for i := 0; i < nPlain; i++ {
		name := fmt.Sprintf("c%d", i)
		g.plain = append(g.plain, name)
		env = env.MustExtend(name, tokT)
	}
	for i := 0; i < g.rng.Intn(2); i++ { // 0..1 carriers
		name := fmt.Sprintf("k%d", i)
		g.carriers = append(g.carriers, name)
		env = env.MustExtend(name, types.ChanIO{Elem: tokT})
	}

	nComp := 2 + g.rng.Intn(3) // 2..4
	comps := make([]types.Type, nComp)
	for i := range comps {
		comps[i] = g.component()
	}

	return &System{
		Name: fmt.Sprintf("Rand(%d)", seed),
		Env:  env,
		Type: types.ParOf(comps...),
		Props: closedProps([]verify.Property{
			{Kind: verify.DeadlockFree},
			{Kind: verify.EventualOutput, Channels: []string{g.plain[0]}},
			{Kind: verify.Forwarding, From: g.plain[0], To: g.plain[1]},
			{Kind: verify.NonUsage, Channels: []string{g.plain[0]}},
			{Kind: verify.Reactive, From: g.plain[0]},
			{Kind: verify.Responsive, From: g.plain[0]},
		}),
		// Expected is left nil: verdicts are unknown by construction; the
		// differential tests compare engines against each other and
		// replay-validate every FAIL instead.
	}
}

// component generates one sequential (Par-free) component: recursive with
// probability ~0.6, else a finite protocol. Components never contain Par,
// so finite control holds trivially.
func (g *generator) component() types.Type {
	depth := 2 + g.rng.Intn(2) // 2..3
	if g.rng.Intn(5) < 3 {
		// µt.body: body starts unguarded — the grammar only emits the
		// recursion variable under an i/o prefix.
		return types.Rec{Var: "t", Body: g.body(depth, true, false)}
	}
	return g.body(depth, false, false)
}

// body generates a process type of bounded depth. rec reports that the
// surrounding component is a µt-recursion whose variable the leaves may
// recurse on; guarded reports that an i/o prefix has been crossed since
// the binder, the precondition for emitting the recursion variable
// (types.CheckGuarded).
func (g *generator) body(d int, rec, guarded bool) types.Type {
	if d <= 0 {
		return g.leaf(rec, guarded)
	}
	roll := g.rng.Intn(10)
	switch {
	case roll < 3: // output on a plain channel
		return types.Out{Ch: tv(g.pick(g.plain)), Payload: types.Unit{}, Cont: thunk(g.body(d-1, rec, true))}
	case roll < 6: // input on a plain channel
		return types.In{Ch: tv(g.pick(g.plain)), Cont: types.Pi{
			Var: g.freshVar("u"), Dom: types.Unit{}, Cod: g.body(d-1, rec, true)}}
	case roll < 7 && len(g.carriers) > 0: // send a channel reference
		return types.Out{Ch: tv(g.pick(g.carriers)), Payload: tv(g.pick(g.plain)), Cont: thunk(g.body(d-1, rec, true))}
	case roll < 8 && len(g.carriers) > 0: // receive a reference, maybe respond on it
		z := g.freshVar("z")
		var cont types.Type
		if g.rng.Intn(2) == 0 {
			// The dependent-type payoff: the received reference is used
			// for output, which the type-level substitution tracks.
			cont = types.Out{Ch: types.Var{Name: z}, Payload: types.Unit{}, Cont: thunk(g.body(d-1, rec, true))}
		} else {
			cont = g.body(d-1, rec, true)
		}
		return types.In{Ch: tv(g.pick(g.carriers)), Cont: types.Pi{
			Var: z, Dom: types.ChanIO{Elem: types.Unit{}}, Cod: cont}}
	case roll < 9: // internal choice
		return types.Union{L: g.body(d-1, rec, guarded), R: g.body(d-1, rec, guarded)}
	default:
		return g.leaf(rec, guarded)
	}
}

// leaf terminates a branch: the recursion variable when permitted (and
// usually taken, so recursive components actually loop), nil otherwise.
func (g *generator) leaf(rec, guarded bool) types.Type {
	if rec && guarded && g.rng.Intn(4) > 0 {
		return types.RecVar{Name: "t"}
	}
	return types.Nil{}
}
