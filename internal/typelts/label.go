// Package typelts implements the labelled transition semantics of λπ⩽
// types (PLDI 2019, Def. 4.2 / Fig. 6), the Y-limitation operator of
// Def. 4.9, and bounded state-space exploration.
//
// Types act: an output type o[S,T,Π()U] fires the label S⟨T⟩; an input
// type i[S,Π(x:T)U] fires S(T′) for every admissible payload T′ (early
// semantics); a parallel composition fires τ[S,S′] when two components
// might interact (Γ ⊢ S ▷◁ S′); unions resolve via τ[∨]. Transmitted
// *variables* are substituted into input continuations, which is how the
// theory tracks channels across transmissions (Ex. 4.3).
package typelts

import (
	"fmt"

	"effpi/internal/types"
)

// Label is a transition label of the type LTS.
//
// The implementations are TauChoice (τ[∨]), Output (S⟨T⟩), Input (S(T)),
// Comm (τ[S,S′]), and the two run-completion labels Done (✔, fired forever
// by a properly terminated state) and Stuck (⊠, fired forever by a state
// with no other transitions — a deadlock).
type Label interface {
	label()
	// Key is a canonical identity string: two labels with equal keys are
	// the same action of the LTS alphabet.
	Key() string
	String() string
}

// TauChoice is the internal choice label τ[∨].
type TauChoice struct{}

// Output is the label S⟨T⟩: a value of type T is sent on an S-typed
// channel. Subject is the channel type (often a variable x̱).
type Output struct {
	Subject types.Type
	Payload types.Type
}

// Input is the label S(T): a value of type T is received from an S-typed
// channel (early input semantics: T ranges over admissible payloads).
type Input struct {
	Subject types.Type
	Payload types.Type
}

// Comm is the synchronisation label τ[S,S′]: an output on an S-typed
// channel met an input on an S′-typed channel (Γ ⊢ S ▷◁ S′). Payload
// records the transmitted type. The paper's labels τ[S,S′] omit the
// payload; recording it refines the alphabet harmlessly and mirrors the
// paper's mCRL2 encoding into CCS *without restriction*, where the
// complementary send/receive actions of a synchronisation stay visible —
// which is what lets the Fig. 7 liveness schemas observe interactions
// inside closed compositions.
type Comm struct {
	Sender   types.Type
	Receiver types.Type
	Payload  types.Type
}

// Done is the completion label ✔: self-loop of a state whose parallel
// components are all nil. Runs of Def. 4.6 are maximal; completing
// terminated states with ✔^ω lets the linear-time semantics distinguish
// proper termination from deadlock.
type Done struct{}

// Stuck is the completion label ⊠: self-loop of a non-nil state with no
// transitions (a deadlocked composition).
type Stuck struct{}

func (TauChoice) label() {}
func (Output) label()    {}
func (Input) label()     {}
func (Comm) label()      {}
func (Done) label()      {}
func (Stuck) label()     {}

func (TauChoice) Key() string { return "τ∨" }
func (Done) Key() string      { return "✔" }
func (Stuck) Key() string     { return "⊠" }

func (l Output) Key() string {
	return "!" + types.Canon(l.Subject) + "⟨" + types.Canon(l.Payload) + "⟩"
}

func (l Input) Key() string {
	return "?" + types.Canon(l.Subject) + "(" + types.Canon(l.Payload) + ")"
}

func (l Comm) Key() string {
	return "τ[" + types.Canon(l.Sender) + "," + types.Canon(l.Receiver) + ":" + types.Canon(l.Payload) + "]"
}

func (TauChoice) String() string { return "τ[∨]" }
func (Done) String() string      { return "✔" }
func (Stuck) String() string     { return "⊠" }

func (l Output) String() string { return fmt.Sprintf("%s⟨%s⟩", l.Subject, l.Payload) }
func (l Input) String() string  { return fmt.Sprintf("%s(%s)", l.Subject, l.Payload) }
func (l Comm) String() string   { return fmt.Sprintf("τ[%s,%s]", l.Sender, l.Receiver) }

// IsTau reports whether l is an internal action (τ[∨] or τ[S,S′]).
func IsTau(l Label) bool {
	switch l.(type) {
	case TauChoice, Comm:
		return true
	default:
		return false
	}
}

// IsCompletion reports whether l is a run-completion label (✔ or ⊠).
func IsCompletion(l Label) bool {
	switch l.(type) {
	case Done, Stuck:
		return true
	default:
		return false
	}
}
