package typelts

import (
	"testing"

	"effpi/internal/types"
)

func tvar(n string) types.Type { return types.Var{Name: n} }

// pingPongType builds T from Ex. 4.3:
//
//	p[ o[z, y, Π() i[y, Π(reply:str) nil]],
//	   i[z, Π(replyTo:co[str]) o[replyTo, str, Π()nil]] ]
func pingPongType() types.Type {
	return types.Par{
		L: types.Out{Ch: tvar("z"), Payload: tvar("y"),
			Cont: types.Thunk(types.In{Ch: tvar("y"),
				Cont: types.Pi{Var: "reply", Dom: types.Str{}, Cod: types.Nil{}}})},
		R: types.In{Ch: tvar("z"),
			Cont: types.Pi{Var: "replyTo", Dom: types.ChanO{Elem: types.Str{}},
				Cod: types.Out{Ch: tvar("replyTo"), Payload: types.Str{}, Cont: types.Thunk(types.Nil{})}}},
	}
}

func pingPongEnv() *types.Env {
	return types.EnvOf(
		"y", types.ChanIO{Elem: types.Str{}},
		"z", types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}},
	)
}

// TestExample43 replays the type transition sequence of Ex. 4.3:
// T --τ[z,z]--> p[i[y,...], o[y,str,...]] --τ[y,y]--> p[nil,nil].
func TestExample43(t *testing.T) {
	sem := &Semantics{Env: pingPongEnv()}
	t0 := pingPongType()

	steps := sem.Transitions(t0)
	comm := findComm(steps, "z", "z")
	if comm == nil {
		t.Fatalf("expected τ[z,z] transition, got %v", labels(steps))
	}

	// After the communication, y must have been substituted for replyTo:
	// the ponger's reply goes back on y (channel tracking across
	// transmission).
	want1 := types.Par{
		L: types.In{Ch: tvar("y"), Cont: types.Pi{Var: "reply", Dom: types.Str{}, Cod: types.Nil{}}},
		R: types.Out{Ch: tvar("y"), Payload: types.Str{}, Cont: types.Thunk(types.Nil{})},
	}
	if !types.Equal(comm.Next, want1) {
		t.Fatalf("after τ[z,z]:\n  got  %s\n  want %s", comm.Next, want1)
	}

	steps = sem.Transitions(comm.Next)
	comm2 := findComm(steps, "y", "y")
	if comm2 == nil {
		t.Fatalf("expected τ[y,y] transition, got %v", labels(steps))
	}
	if !types.IsNilPar(comm2.Next) {
		t.Fatalf("after τ[y,y]: got %s, want nil‖nil", comm2.Next)
	}
}

// TestEarlyInputCandidates: an input type fires one transition per
// admissible payload — the parameter type itself plus every environment
// variable below it ([T→i]).
func TestEarlyInputCandidates(t *testing.T) {
	env := pingPongEnv()
	sem := &Semantics{Env: env}
	in := types.In{Ch: tvar("z"),
		Cont: types.Pi{Var: "replyTo", Dom: types.ChanO{Elem: types.Str{}},
			Cod: types.Out{Ch: tvar("replyTo"), Payload: types.Str{}, Cont: types.Thunk(types.Nil{})}}}
	steps := sem.Transitions(in)
	// Candidates: co[str] (the parameter type) and y (y̱ ⩽ co[str]).
	if len(steps) != 2 {
		t.Fatalf("expected 2 early-input instances, got %d: %v", len(steps), labels(steps))
	}
	var sawVar, sawType bool
	for _, s := range steps {
		in := s.Label.(Input)
		switch p := in.Payload.(type) {
		case types.Var:
			if p.Name != "y" {
				t.Errorf("unexpected variable payload %s", p.Name)
			}
			sawVar = true
			// Substitution: continuation must now output on y.
			wantNext := types.Out{Ch: tvar("y"), Payload: types.Str{}, Cont: types.Thunk(types.Nil{})}
			if !types.Equal(s.Next, wantNext) {
				t.Errorf("variable input: next = %s, want %s", s.Next, wantNext)
			}
		default:
			sawType = true
		}
	}
	if !sawVar || !sawType {
		t.Errorf("missing input instance: sawVar=%v sawType=%v", sawVar, sawType)
	}
}

// TestNoCrossTalk: distinct channels do not synchronise (x ▷◁ y fails).
func TestNoCrossTalk(t *testing.T) {
	env := types.EnvOf(
		"x", types.ChanIO{Elem: types.Int{}},
		"y", types.ChanIO{Elem: types.Int{}},
	)
	sem := &Semantics{Env: env}
	par := types.Par{
		L: types.Out{Ch: tvar("x"), Payload: types.Int{}, Cont: types.Thunk(types.Nil{})},
		R: types.In{Ch: tvar("y"), Cont: types.Pi{Var: "v", Dom: types.Int{}, Cod: types.Nil{}}},
	}
	for _, s := range sem.Transitions(par) {
		if _, ok := s.Label.(Comm); ok {
			t.Fatalf("x and y must not communicate, got %s", s.Label)
		}
	}
}

// TestImpreciseCommunication: Ex. 3.5's T2 — an output whose channel type
// is cio[int] (a supertype of x̱) still synchronises with an input on x,
// because cio[int] ▷◁ x̱ holds. The label records both subjects; the
// verifier's Aτ set treats it as imprecise.
func TestImpreciseCommunication(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	sem := &Semantics{Env: env}
	par := types.Par{
		L: types.Out{Ch: types.ChanIO{Elem: types.Int{}}, Payload: types.Int{}, Cont: types.Thunk(types.Nil{})},
		R: types.In{Ch: tvar("x"), Cont: types.Pi{Var: "v", Dom: types.Int{}, Cod: types.Nil{}}},
	}
	var comm *Step
	for _, s := range sem.Transitions(par) {
		if _, ok := s.Label.(Comm); ok {
			comm = &s
			break
		}
	}
	if comm == nil {
		t.Fatal("expected imprecise communication cio[int] ▷◁ x")
	}
}

// TestUnionChoice: T ∨ U fires τ[∨] to each branch.
func TestUnionChoice(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	sem := &Semantics{Env: env}
	u := types.Union{
		L: types.Out{Ch: tvar("x"), Payload: types.Int{}, Cont: types.Thunk(types.Nil{})},
		R: types.Nil{},
	}
	steps := sem.Transitions(u)
	if len(steps) != 2 {
		t.Fatalf("expected 2 τ[∨] steps, got %v", labels(steps))
	}
	for _, s := range steps {
		if _, ok := s.Label.(TauChoice); !ok {
			t.Errorf("expected τ[∨], got %s", s.Label)
		}
	}
}

// TestRecUnfoldTransitions: µ-types act like their unfolding.
func TestRecUnfoldTransitions(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	sem := &Semantics{Env: env}
	rec := types.Rec{Var: "t", Body: types.Out{Ch: tvar("x"), Payload: types.Int{}, Cont: types.Thunk(types.RecVar{Name: "t"})}}
	steps := sem.Transitions(rec)
	if len(steps) != 1 {
		t.Fatalf("expected 1 output step, got %v", labels(steps))
	}
	out, ok := steps[0].Label.(Output)
	if !ok {
		t.Fatalf("expected output, got %s", steps[0].Label)
	}
	if types.Canon(out.Subject) != types.Canon(tvar("x")) {
		t.Errorf("subject = %s, want x", out.Subject)
	}
	// The continuation is the µ-type again: infinite run x⟨int⟩^ω.
	steps2 := sem.Transitions(steps[0].Next)
	if len(steps2) != 1 {
		t.Fatalf("recursive continuation must keep firing, got %v", labels(steps2))
	}
}

// TestYLimitation: Def. 4.9 hides i/o on channels outside Y but keeps
// synchronisations.
func TestYLimitation(t *testing.T) {
	env := types.EnvOf(
		"x", types.ChanIO{Elem: types.Int{}},
		"y", types.ChanIO{Elem: types.Int{}},
	)
	par := types.Par{
		L: types.Out{Ch: tvar("x"), Payload: types.Int{}, Cont: types.Thunk(types.Nil{})},
		R: types.Out{Ch: tvar("y"), Payload: types.Int{}, Cont: types.Thunk(types.Nil{})},
	}
	sem := &Semantics{Env: env, Observable: map[string]bool{"x": true}}
	steps := sem.Transitions(par)
	for _, s := range steps {
		if out, ok := s.Label.(Output); ok {
			if types.Canon(out.Subject) == types.Canon(tvar("y")) {
				t.Errorf("output on y must be hidden under ↑{x}")
			}
		}
	}
	if len(steps) != 1 {
		t.Errorf("expected only the x output, got %v", labels(steps))
	}
}

func findComm(steps []Step, sender, receiver string) *Step {
	for i := range steps {
		if c, ok := steps[i].Label.(Comm); ok {
			s, okS := c.Sender.(types.Var)
			r, okR := c.Receiver.(types.Var)
			if okS && okR && s.Name == sender && r.Name == receiver {
				return &steps[i]
			}
		}
	}
	return nil
}

func labels(steps []Step) []string {
	out := make([]string, len(steps))
	for i, s := range steps {
		out[i] = s.Label.String()
	}
	return out
}

// TestWitnessOnlyDropsAnonymousInstance: with a witness in Γ, the
// verifier's early-input rule keeps only variable payloads; without one
// it falls back to the parameter type.
func TestWitnessOnlyDropsAnonymousInstance(t *testing.T) {
	env := types.EnvOf(
		"z", types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}},
		"w", types.ChanO{Elem: types.Str{}},
	)
	in := types.In{Ch: tvar("z"),
		Cont: types.Pi{Var: "r", Dom: types.ChanO{Elem: types.Str{}}, Cod: types.Nil{}}}

	strict := &Semantics{Env: env, WitnessOnly: true}
	for _, s := range strict.Transitions(in) {
		if _, isVar := s.Label.(Input).Payload.(types.Var); !isVar {
			t.Errorf("WitnessOnly must drop the anonymous instance, got %s", s.Label)
		}
	}

	// Without a variable candidate, the parameter type survives.
	env2 := types.EnvOf("z", types.ChanIO{Elem: types.Unit{}})
	in2 := types.In{Ch: types.Var{Name: "z"},
		Cont: types.Pi{Var: "u", Dom: types.Unit{}, Cod: types.Nil{}}}
	strict2 := &Semantics{Env: env2, WitnessOnly: true}
	steps := strict2.Transitions(in2)
	if len(steps) != 1 {
		t.Fatalf("expected the Dom fallback instance, got %v", labels(steps))
	}
}

// TestUnionInChannelPosition: a union in the output's channel position
// resolves via τ[∨] (the reduction context o[E,T,U] of Def. 4.2).
func TestUnionInChannelPosition(t *testing.T) {
	env := types.EnvOf(
		"x", types.ChanIO{Elem: types.Int{}},
		"y", types.ChanIO{Elem: types.Int{}},
	)
	sem := &Semantics{Env: env}
	out := types.Out{
		Ch:      types.Union{L: tvar("x"), R: tvar("y")},
		Payload: types.Int{},
		Cont:    types.Thunk(types.Nil{}),
	}
	steps := sem.Transitions(out)
	if len(steps) != 2 {
		t.Fatalf("expected 2 τ[∨] resolutions, got %v", labels(steps))
	}
	for _, s := range steps {
		if _, ok := s.Label.(TauChoice); !ok {
			t.Errorf("expected τ[∨], got %s", s.Label)
		}
		next := s.Next.(types.Out)
		if _, ok := next.Ch.(types.Var); !ok {
			t.Errorf("union must resolve to a concrete subject, got %s", next.Ch)
		}
	}
}

// TestCommLabelRecordsPayload: synchronisation labels carry the
// transmitted payload (needed by the forwarding/responsive schemas).
func TestCommLabelRecordsPayload(t *testing.T) {
	env := pingPongEnv()
	sem := &Semantics{Env: env}
	steps := sem.Transitions(pingPongType())
	found := false
	for _, s := range steps {
		if c, ok := s.Label.(Comm); ok {
			if p, ok := c.Payload.(types.Var); ok && p.Name == "y" {
				found = true
			}
		}
	}
	if !found {
		t.Error("τ[z,z] must record the transmitted payload y")
	}
}

// TestProcHasNoTransitions: proc is opaque (Thm. 4.10 excludes it).
func TestProcHasNoTransitions(t *testing.T) {
	sem := &Semantics{Env: types.NewEnv()}
	if steps := sem.Transitions(types.Proc{}); len(steps) != 0 {
		t.Errorf("proc must have no transitions, got %v", labels(steps))
	}
	if steps := sem.Transitions(types.Nil{}); len(steps) != 0 {
		t.Errorf("nil must have no transitions, got %v", labels(steps))
	}
}

// TestThreeWayInterleaving: a 3-component soup interleaves all enabled
// actions and synchronises every compatible pair.
func TestThreeWayInterleaving(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	sem := &Semantics{Env: env}
	sender := func() types.Type {
		return types.Out{Ch: tvar("x"), Payload: types.Int{}, Cont: types.Thunk(types.Nil{})}
	}
	recv := types.In{Ch: tvar("x"), Cont: types.Pi{Var: "v", Dom: types.Int{}, Cod: types.Nil{}}}
	soup := types.ParOf(sender(), sender(), recv)
	comms := 0
	for _, s := range sem.Transitions(soup) {
		if _, ok := s.Label.(Comm); ok {
			comms++
		}
	}
	// Either sender can synchronise with the single receiver.
	if comms != 2 {
		t.Errorf("expected 2 synchronisations, got %d", comms)
	}
}
