package typelts

import (
	"fmt"
	"sync"
	"testing"

	"effpi/internal/types"
)

// stepFingerprint renders a CompStep list positionally: label keys and
// successor component IDs. Equal fingerprints mean equal content in
// equal order.
func stepFingerprint(cs []CompStep) string {
	out := ""
	for _, st := range cs {
		out += fmt.Sprintf("%s %v;", st.Label.Key(), st.Next)
	}
	return out
}

// TestCacheConcurrentComponentSteps hammers one shared Cache from many
// forked Semantics concurrently — ComponentSteps, SyncSteps and
// Transitions over the same component set — and checks every goroutine
// observes exactly the content a fresh serial semantics computes. Run
// under -race this is the correctness test of the lock-striped shards.
func TestCacheConcurrentComponentSteps(t *testing.T) {
	env := pingPongEnv()
	comps := types.FlattenPar(pingPongType().(types.Par))

	// Serial reference: fresh cache, single goroutine.
	ref := &Semantics{Env: env, WitnessOnly: true, Cache: NewCache(env, true)}
	refIDs := make([]types.ID, len(comps))
	for i, c := range comps {
		refIDs[i] = ref.Cache.Interner().Intern(c)
	}
	wantComp := make([]string, len(refIDs))
	for i, id := range refIDs {
		wantComp[i] = stepFingerprint(ref.ComponentSteps(id))
	}
	wantSync := stepFingerprint(ref.SyncSteps(refIDs[0], refIDs[1]))

	// Concurrent run: one shared cache, many forks, repeated lookups.
	shared := &Semantics{Env: env, WitnessOnly: true, Cache: NewCache(env, true)}
	ids := make([]types.ID, len(comps))
	for i, c := range comps {
		ids[i] = shared.Cache.Interner().Intern(c)
	}
	const goroutines = 16
	const rounds = 50
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		ws := shared.Fork()
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, id := range ids {
					if got := stepFingerprint(ws.ComponentSteps(id)); got != wantComp[i] {
						errs[g] = fmt.Errorf("component %d: got %q, want %q", i, got, wantComp[i])
						return
					}
				}
				if got := stepFingerprint(ws.SyncSteps(ids[0], ids[1])); got != wantSync {
					errs[g] = fmt.Errorf("sync: got %q, want %q", got, wantSync)
					return
				}
				// Transitions exercises the steps/match shards.
				ws.Transitions(pingPongType())
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// TestCacheFirstWriteWins checks that all goroutines racing to compute
// one entry end up sharing the same published slice (entries are
// immutable and adopted from the winner), so downstream consumers can
// compare and index them without synchronisation.
func TestCacheFirstWriteWins(t *testing.T) {
	env := pingPongEnv()
	base := &Semantics{Env: env, WitnessOnly: true, Cache: NewCache(env, true)}
	id := base.Cache.Interner().Intern(types.FlattenPar(pingPongType().(types.Par))[0])

	const goroutines = 16
	got := make([][]CompStep, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		ws := base.Fork()
		go func(g int) {
			defer wg.Done()
			got[g] = ws.ComponentSteps(id)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if len(got[g]) != len(got[0]) {
			t.Fatalf("goroutine %d saw %d steps, goroutine 0 saw %d", g, len(got[g]), len(got[0]))
		}
		if len(got[g]) > 0 && &got[g][0] != &got[0][0] {
			t.Errorf("goroutine %d received a different slice than goroutine 0: racing computations must adopt the first published entry", g)
		}
	}
}

// TestForkIsolation checks a fork shares the cache but not the L1 memo
// or depth bookkeeping — the properties workers rely on.
func TestForkIsolation(t *testing.T) {
	env := pingPongEnv()
	s := &Semantics{Env: env, WitnessOnly: true, Cache: NewCache(env, true)}
	id := s.Cache.Interner().Intern(types.FlattenPar(pingPongType().(types.Par))[0])
	s.ComponentSteps(id) // populate s's L1

	f := s.Fork()
	if f.Cache != s.Cache {
		t.Error("fork must share the cache")
	}
	if f.l1comp != nil || f.l1sync != nil {
		t.Error("fork must start with an empty L1 memo")
	}
	if got := stepFingerprint(f.ComponentSteps(id)); got != stepFingerprint(s.ComponentSteps(id)) {
		t.Error("fork must observe the same cached steps")
	}
}
