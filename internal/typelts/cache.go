package typelts

import (
	"fmt"

	"effpi/internal/types"
)

// Cache memoises the expensive ingredients of the transition semantics
// across states and across whole explorations: raw (un-Y-limited)
// transition step lists per hash-consed type, synchronisation matches per
// label identity, and the type interner itself (which also memoises
// µ-unfolding and substitution). A single Cache shared by the six Fig. 9
// property checks of one system makes their explorations reuse each
// other's per-component work, because the cache key — the interned type —
// is independent of the Y-limitation (Observable), which is applied as a
// filter on top of the cached raw steps.
//
// A Cache is bound to one environment Γ and one WitnessOnly mode: raw
// steps depend on both (early-input candidates are drawn from Γ). A
// Semantics with a mismatching cache ignores it rather than serving
// wrong entries. Cache is not safe for concurrent use (the Interner
// inside it is).
type Cache struct {
	env         *types.Env
	witnessOnly bool
	in          *types.Interner
	steps       map[types.ID][]Step
	match       map[matchKey]bool
	comp        map[types.ID][]CompStep
	sync        map[[2]types.ID][]CompStep
}

type matchKey struct {
	outSub, outPay, inSub, inPay types.ID
}

// NewCache returns an empty cache for semantics over env with the given
// WitnessOnly mode.
func NewCache(env *types.Env, witnessOnly bool) *Cache {
	return &Cache{
		env:         env,
		witnessOnly: witnessOnly,
		in:          types.NewInterner(),
		steps:       make(map[types.ID][]Step, 1024),
		match:       make(map[matchKey]bool, 256),
		comp:        make(map[types.ID][]CompStep, 256),
		sync:        make(map[[2]types.ID][]CompStep, 256),
	}
}

// Interner exposes the cache's type interner, which callers (lts.Explore)
// use for state identity.
func (c *Cache) Interner() *types.Interner { return c.in }

// compatible reports whether the cache may serve entries for s: same
// environment and early-input mode.
func (c *Cache) compatible(s *Semantics) bool {
	return c != nil && c.env == s.Env && c.witnessOnly == s.WitnessOnly
}

// HasCompatibleCache reports whether s carries a cache built for its own
// environment and early-input mode (and may therefore serve its entries).
func (s *Semantics) HasCompatibleCache() bool { return s.Cache.compatible(s) }

// LabelKey is a compact identity for a transition label: two labels have
// equal LabelKeys (from the same Cache) iff their Key() strings are
// equal. Building one costs a few small type interns instead of
// rendering canonical strings.
type LabelKey struct {
	Kind    uint8
	A, B, C types.ID
}

const (
	labelTau   = 1
	labelOut   = 2
	labelIn    = 3
	labelComm  = 4
	labelDone  = 5
	labelStuck = 6
)

// CompStep is one transition viewed at the component level: the label,
// its compact identity, and the hash-consed FlattenPar leaves of the
// successor of the participating component(s). State successors are
// multiset surgery — remove the acting components' IDs, add Next — so
// lts.Explore never builds or walks a successor type tree on the hot
// path. For a synchronisation step Next holds the replacements of both
// participants concatenated (the state is a multiset, so positions are
// irrelevant).
type CompStep struct {
	Label Label
	Key   LabelKey
	Next  []types.ID
}

// ComponentSteps returns the raw (un-Y-limited) transitions of the
// single component with interned id cid, memoised in the semantics'
// cache. The component is one FlattenPar leaf of a state; its steps are
// the interleaving moves the state inherits from it (Fig. 6 lifted
// through the parallel context).
//
// Unlike Transitions, the component API cannot fall back to uncached
// computation — cid is only meaningful relative to the cache's interner
// — so a missing or mismatched cache is a caller bug and panics
// (lts.Explore always attaches a compatible one).
func (s *Semantics) ComponentSteps(cid types.ID) []CompStep {
	c := s.mustCache()
	if cs, ok := c.comp[cid]; ok {
		return cs
	}
	saved := s.depthHit
	s.depthHit = false
	// Depth 1: the component sits inside the state's parallel context,
	// mirroring parSteps' raw(c, depth+1).
	steps := s.rawOf(c.in.TypeOf(cid), 1)
	cs := make([]CompStep, len(steps))
	for i, st := range steps {
		cs[i] = CompStep{Label: st.Label, Key: c.LabelKeyOf(st.Label), Next: c.internLeaves(st.Next)}
	}
	if !s.depthHit {
		c.comp[cid] = cs
	}
	s.depthHit = s.depthHit || saved
	return cs
}

// SyncSteps returns the synchronisations [T→iox]/[T→io] between an
// output of component ci and an input of component cj, memoised per
// ordered component pair. Next holds the flattened successors of both
// components. Like ComponentSteps, it requires a compatible cache.
func (s *Semantics) SyncSteps(ci, cj types.ID) []CompStep {
	c := s.mustCache()
	key := [2]types.ID{ci, cj}
	if ss, ok := c.sync[key]; ok {
		return ss
	}
	saved := s.depthHit
	s.depthHit = false
	outs := s.ComponentSteps(ci)
	ins := s.ComponentSteps(cj)
	ss := []CompStep{}
	for _, so := range outs {
		out, ok := so.Label.(Output)
		if !ok {
			continue
		}
		for _, si := range ins {
			in, ok := si.Label.(Input)
			if !ok {
				continue
			}
			if !s.match(out, in) {
				continue
			}
			next := make([]types.ID, 0, len(so.Next)+len(si.Next))
			next = append(next, so.Next...)
			next = append(next, si.Next...)
			lab := Comm{Sender: out.Subject, Receiver: in.Subject, Payload: out.Payload}
			ss = append(ss, CompStep{Label: lab, Key: c.LabelKeyOf(lab), Next: next})
		}
	}
	if !s.depthHit {
		c.sync[key] = ss
	}
	s.depthHit = s.depthHit || saved
	return ss
}

// internLeaves interns the FlattenPar leaves of t.
func (c *Cache) internLeaves(t types.Type) []types.ID {
	leaves := types.FlattenPar(t)
	ids := make([]types.ID, len(leaves))
	for i, l := range leaves {
		ids[i] = c.in.Intern(l)
	}
	return ids
}

// InternLeaves interns the FlattenPar leaves of t: the component
// representation lts.Explore seeds its root state with. It requires a
// compatible cache (see ComponentSteps).
func (s *Semantics) InternLeaves(t types.Type) []types.ID {
	return s.mustCache().internLeaves(t)
}

// mustCache returns the semantics' cache, panicking with a diagnostic if
// it is absent or was built for a different Env/WitnessOnly pair —
// serving such entries would silently compute transitions under the
// wrong environment.
func (s *Semantics) mustCache() *Cache {
	if !s.Cache.compatible(s) {
		panic("typelts: component-step API requires a Cache built with NewCache(sem.Env, sem.WitnessOnly)")
	}
	return s.Cache
}

// KeepLabel applies the Y-limitation filter of Def. 4.9 to a single
// label (true when no limitation is configured).
func (s *Semantics) KeepLabel(l Label) bool {
	if s.Observable == nil {
		return true
	}
	return s.keep(l)
}

// LabelKeyOf computes the compact identity of l.
func (c *Cache) LabelKeyOf(l Label) LabelKey {
	switch l := l.(type) {
	case TauChoice:
		return LabelKey{Kind: labelTau}
	case Done:
		return LabelKey{Kind: labelDone}
	case Stuck:
		return LabelKey{Kind: labelStuck}
	case Output:
		return LabelKey{Kind: labelOut, A: c.in.Intern(l.Subject), B: c.in.Intern(l.Payload)}
	case Input:
		return LabelKey{Kind: labelIn, A: c.in.Intern(l.Subject), B: c.in.Intern(l.Payload)}
	case Comm:
		return LabelKey{Kind: labelComm, A: c.in.Intern(l.Sender), B: c.in.Intern(l.Receiver), C: c.in.Intern(l.Payload)}
	default:
		// A silent zero key would collapse all unknown label kinds into
		// one alphabet entry and corrupt verdicts; fail loudly instead.
		panic(fmt.Sprintf("typelts: LabelKeyOf: unknown label implementation %T", l))
	}
}
