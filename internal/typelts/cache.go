package typelts

import (
	"fmt"
	"sync"

	"effpi/internal/types"
)

// Cache memoises the expensive ingredients of the transition semantics
// across states and across whole explorations: raw (un-Y-limited)
// transition step lists per hash-consed type, synchronisation matches per
// label identity, and the type interner itself (which also memoises
// µ-unfolding and substitution). A single Cache shared by the six Fig. 9
// property checks of one system makes their explorations reuse each
// other's per-component work, because the cache key — the interned type —
// is independent of the Y-limitation (Observable), which is applied as a
// filter on top of the cached raw steps.
//
// A Cache is bound to one environment Γ and one WitnessOnly mode: raw
// steps depend on both (early-input candidates are drawn from Γ). A
// Semantics with a mismatching cache ignores it rather than serving
// wrong entries.
//
// Cache is safe for concurrent use: the four memo maps are lock-striped
// across shards keyed by a hash of the entry key, so one cache can serve
// many exploration workers and many simultaneous explorations (the
// Interner inside is independently concurrency-safe). Entries are
// immutable once published and first-write-wins: when two goroutines
// race to compute the same entry, both compute an ≡-equivalent result
// and the earlier store sticks, so readers never observe an entry
// changing. Memo values are always computed from the interner's
// representative of the key (not from whichever syntactic variant a
// caller happened to pass), which keeps entry content independent of
// goroutine scheduling — the determinism argument of the parallel
// exploration engine leans on this (see DESIGN.md).
type Cache struct {
	env         *types.Env
	witnessOnly bool
	in          *types.Interner
	shards      [cacheShards]cacheShard
}

// cacheShards is the number of lock stripes. 64 keeps the per-shard
// mutexes essentially uncontended at any realistic worker count while
// costing only a few kilobytes per Cache.
const cacheShards = 64

type cacheShard struct {
	mu    sync.Mutex
	steps map[types.ID][]Step
	match map[matchKey]bool
	comp  map[types.ID][]CompStep
	sync  map[[2]types.ID][]CompStep
}

type matchKey struct {
	outSub, outPay, inSub, inPay types.ID
}

// NewCache returns an empty cache for semantics over env with the given
// WitnessOnly mode.
func NewCache(env *types.Env, witnessOnly bool) *Cache {
	return &Cache{
		env:         env,
		witnessOnly: witnessOnly,
		in:          types.NewInterner(),
	}
}

// shardOf mixes a 32-bit key hash down to a shard index
// (Fibonacci hashing: the high bits of h*φ⁻¹ are well distributed even
// for sequential IDs).
func (c *Cache) shardOf(h uint32) *cacheShard {
	return &c.shards[(h*0x9E3779B1)>>(32-6)] // 2^6 = cacheShards
}

func (c *Cache) stepsShard(id types.ID) *cacheShard {
	return c.shardOf(uint32(id))
}

func (c *Cache) compShard(id types.ID) *cacheShard {
	return c.shardOf(uint32(id) ^ 0x517cc1b7)
}

func (c *Cache) syncShard(key [2]types.ID) *cacheShard {
	return c.shardOf(uint32(key[0])*31 + uint32(key[1]))
}

func (c *Cache) matchShard(key matchKey) *cacheShard {
	h := uint32(key.outSub)
	h = h*31 + uint32(key.outPay)
	h = h*31 + uint32(key.inSub)
	h = h*31 + uint32(key.inPay)
	return c.shardOf(h)
}

// lookupSteps / storeSteps guard the per-type raw-step memo. Stores are
// first-write-wins so published entries are stable.
func (c *Cache) lookupSteps(id types.ID) ([]Step, bool) {
	sh := c.stepsShard(id)
	sh.mu.Lock()
	steps, ok := sh.steps[id]
	sh.mu.Unlock()
	return steps, ok
}

func (c *Cache) storeSteps(id types.ID, steps []Step) []Step {
	sh := c.stepsShard(id)
	sh.mu.Lock()
	if sh.steps == nil {
		sh.steps = make(map[types.ID][]Step, 32)
	}
	if prev, ok := sh.steps[id]; ok {
		steps = prev
	} else {
		sh.steps[id] = steps
	}
	sh.mu.Unlock()
	return steps
}

func (c *Cache) lookupMatch(key matchKey) (verdict bool, ok bool) {
	sh := c.matchShard(key)
	sh.mu.Lock()
	verdict, ok = sh.match[key]
	sh.mu.Unlock()
	return verdict, ok
}

func (c *Cache) storeMatch(key matchKey, v bool) {
	sh := c.matchShard(key)
	sh.mu.Lock()
	if sh.match == nil {
		sh.match = make(map[matchKey]bool, 16)
	}
	if _, ok := sh.match[key]; !ok {
		sh.match[key] = v
	}
	sh.mu.Unlock()
}

func (c *Cache) lookupComp(id types.ID) ([]CompStep, bool) {
	sh := c.compShard(id)
	sh.mu.Lock()
	cs, ok := sh.comp[id]
	sh.mu.Unlock()
	return cs, ok
}

func (c *Cache) storeComp(id types.ID, cs []CompStep) []CompStep {
	sh := c.compShard(id)
	sh.mu.Lock()
	if sh.comp == nil {
		sh.comp = make(map[types.ID][]CompStep, 16)
	}
	if prev, ok := sh.comp[id]; ok {
		cs = prev
	} else {
		sh.comp[id] = cs
	}
	sh.mu.Unlock()
	return cs
}

func (c *Cache) lookupSync(key [2]types.ID) ([]CompStep, bool) {
	sh := c.syncShard(key)
	sh.mu.Lock()
	ss, ok := sh.sync[key]
	sh.mu.Unlock()
	return ss, ok
}

func (c *Cache) storeSync(key [2]types.ID, ss []CompStep) []CompStep {
	sh := c.syncShard(key)
	sh.mu.Lock()
	if sh.sync == nil {
		sh.sync = make(map[[2]types.ID][]CompStep, 16)
	}
	if prev, ok := sh.sync[key]; ok {
		ss = prev
	} else {
		sh.sync[key] = ss
	}
	sh.mu.Unlock()
	return ss
}

// Interner exposes the cache's type interner, which callers (lts.Explore)
// use for state identity.
func (c *Cache) Interner() *types.Interner { return c.in }

// Memos returns the total number of memo entries held by the cache — the
// four shard-striped maps plus the interned-type table — the size measure
// long-lived owners (the public package's Workspace) budget their
// eviction policy against. It takes every shard lock briefly, so it is
// meant for periodic accounting, not hot paths.
func (c *Cache) Memos() int {
	n := c.in.Len()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.steps) + len(sh.match) + len(sh.comp) + len(sh.sync)
		sh.mu.Unlock()
	}
	return n
}

// Env returns the environment the cache was built for.
func (c *Cache) Env() *types.Env { return c.env }

// WitnessOnly reports whether the cache was built for witness-only
// early input (see Semantics.WitnessOnly). Symmetry detection
// (lts.DetectSymmetry) requires it: its confinement argument relies on
// environment-variable input instances subsuming the anonymous one.
func (c *Cache) WitnessOnly() bool { return c.witnessOnly }

// compatible reports whether the cache may serve entries for s: same
// environment and early-input mode.
func (c *Cache) compatible(s *Semantics) bool {
	return c != nil && c.env == s.Env && c.witnessOnly == s.WitnessOnly
}

// HasCompatibleCache reports whether s carries a cache built for its own
// environment and early-input mode (and may therefore serve its entries).
func (s *Semantics) HasCompatibleCache() bool { return s.Cache.compatible(s) }

// LabelKey is a compact identity for a transition label: two labels have
// equal LabelKeys (from the same Cache) iff their Key() strings are
// equal. Building one costs a few small type interns instead of
// rendering canonical strings.
type LabelKey struct {
	Kind    uint8
	A, B, C types.ID
}

const (
	labelTau   = 1
	labelOut   = 2
	labelIn    = 3
	labelComm  = 4
	labelDone  = 5
	labelStuck = 6
)

// CompStep is one transition viewed at the component level: the label,
// its compact identity, and the hash-consed FlattenPar leaves of the
// successor of the participating component(s). State successors are
// multiset surgery — remove the acting components' IDs, add Next — so
// lts.Explore never builds or walks a successor type tree on the hot
// path. For a synchronisation step Next holds the replacements of both
// participants concatenated (the state is a multiset, so positions are
// irrelevant).
type CompStep struct {
	Label Label
	Key   LabelKey
	Next  []types.ID
}

// ComponentSteps returns the raw (un-Y-limited) transitions of the
// single component with interned id cid, memoised in the semantics'
// cache. The component is one FlattenPar leaf of a state; its steps are
// the interleaving moves the state inherits from it (Fig. 6 lifted
// through the parallel context).
//
// Unlike Transitions, the component API cannot fall back to uncached
// computation — cid is only meaningful relative to the cache's interner
// — so a missing or mismatched cache is a caller bug and panics
// (lts.Explore always attaches a compatible one).
func (s *Semantics) ComponentSteps(cid types.ID) []CompStep {
	if cs, ok := s.l1comp[cid]; ok {
		return cs
	}
	c := s.mustCache()
	if cs, ok := c.lookupComp(cid); ok {
		s.l1compStore(cid, cs)
		return cs
	}
	saved := s.depthHit
	s.depthHit = false
	// Depth 1: the component sits inside the state's parallel context,
	// mirroring parSteps' raw(c, depth+1).
	steps := s.rawOf(c.in.TypeOf(cid), 1)
	cs := make([]CompStep, len(steps))
	for i, st := range steps {
		cs[i] = CompStep{Label: st.Label, Key: c.LabelKeyOf(st.Label), Next: c.internLeaves(st.Next)}
	}
	if !s.depthHit {
		cs = c.storeComp(cid, cs) // first-write-wins: adopt the winner
		s.l1compStore(cid, cs)
	}
	s.depthHit = s.depthHit || saved
	return cs
}

func (s *Semantics) l1compStore(cid types.ID, cs []CompStep) {
	if s.l1comp == nil {
		s.l1comp = make(map[types.ID][]CompStep, 64)
	}
	s.l1comp[cid] = cs
}

func (s *Semantics) l1syncStore(key [2]types.ID, ss []CompStep) {
	if s.l1sync == nil {
		s.l1sync = make(map[[2]types.ID][]CompStep, 64)
	}
	s.l1sync[key] = ss
}

// SyncSteps returns the synchronisations [T→iox]/[T→io] between an
// output of component ci and an input of component cj, memoised per
// ordered component pair. Next holds the flattened successors of both
// components. Like ComponentSteps, it requires a compatible cache.
func (s *Semantics) SyncSteps(ci, cj types.ID) []CompStep {
	key := [2]types.ID{ci, cj}
	if ss, ok := s.l1sync[key]; ok {
		return ss
	}
	c := s.mustCache()
	if ss, ok := c.lookupSync(key); ok {
		s.l1syncStore(key, ss)
		return ss
	}
	saved := s.depthHit
	s.depthHit = false
	outs := s.ComponentSteps(ci)
	ins := s.ComponentSteps(cj)
	ss := []CompStep{}
	for _, so := range outs {
		out, ok := so.Label.(Output)
		if !ok {
			continue
		}
		for _, si := range ins {
			in, ok := si.Label.(Input)
			if !ok {
				continue
			}
			if !s.match(out, in) {
				continue
			}
			next := make([]types.ID, 0, len(so.Next)+len(si.Next))
			next = append(next, so.Next...)
			next = append(next, si.Next...)
			lab := Comm{Sender: out.Subject, Receiver: in.Subject, Payload: out.Payload}
			ss = append(ss, CompStep{Label: lab, Key: c.LabelKeyOf(lab), Next: next})
		}
	}
	if !s.depthHit {
		ss = c.storeSync(key, ss) // first-write-wins: adopt the winner
		s.l1syncStore(key, ss)
	}
	s.depthHit = s.depthHit || saved
	return ss
}

// internLeaves interns the FlattenPar leaves of t.
func (c *Cache) internLeaves(t types.Type) []types.ID {
	leaves := types.FlattenPar(t)
	ids := make([]types.ID, len(leaves))
	for i, l := range leaves {
		ids[i] = c.in.Intern(l)
	}
	return ids
}

// InternLeaves interns the FlattenPar leaves of t: the component
// representation lts.Explore seeds its root state with. It requires a
// compatible cache (see ComponentSteps).
func (s *Semantics) InternLeaves(t types.Type) []types.ID {
	return s.mustCache().internLeaves(t)
}

// mustCache returns the semantics' cache, panicking with a diagnostic if
// it is absent or was built for a different Env/WitnessOnly pair —
// serving such entries would silently compute transitions under the
// wrong environment.
func (s *Semantics) mustCache() *Cache {
	if !s.Cache.compatible(s) {
		panic("typelts: component-step API requires a Cache built with NewCache(sem.Env, sem.WitnessOnly)")
	}
	return s.Cache
}

// KeepLabel applies the Y-limitation filter of Def. 4.9 to a single
// label (true when no limitation is configured).
func (s *Semantics) KeepLabel(l Label) bool {
	if s.Observable == nil {
		return true
	}
	return s.keep(l)
}

// LabelKeyOf computes the compact identity of l.
func (c *Cache) LabelKeyOf(l Label) LabelKey {
	switch l := l.(type) {
	case TauChoice:
		return LabelKey{Kind: labelTau}
	case Done:
		return LabelKey{Kind: labelDone}
	case Stuck:
		return LabelKey{Kind: labelStuck}
	case Output:
		return LabelKey{Kind: labelOut, A: c.in.Intern(l.Subject), B: c.in.Intern(l.Payload)}
	case Input:
		return LabelKey{Kind: labelIn, A: c.in.Intern(l.Subject), B: c.in.Intern(l.Payload)}
	case Comm:
		return LabelKey{Kind: labelComm, A: c.in.Intern(l.Sender), B: c.in.Intern(l.Receiver), C: c.in.Intern(l.Payload)}
	default:
		// A silent zero key would collapse all unknown label kinds into
		// one alphabet entry and corrupt verdicts; fail loudly instead.
		panic(fmt.Sprintf("typelts: LabelKeyOf: unknown label implementation %T", l))
	}
}
