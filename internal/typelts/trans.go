package typelts

import (
	"effpi/internal/types"
)

// Step is one labelled transition Γ ⊢ T --α--> T′.
type Step struct {
	Label Label
	Next  types.Type
}

// Semantics computes transitions of types in a fixed environment Γ,
// optionally limited to a set of observable channels (Def. 4.9).
//
// A Semantics value is for a single goroutine: it carries mutable
// bookkeeping (depthHit), which is not synchronised. The Cache it points
// to, however, IS safe for concurrent use — parallel exploration workers
// each take a Fork() of one Semantics and share its cache, so their
// per-component work is computed once and served to all.
type Semantics struct {
	Env *types.Env
	// Observable, when non-nil, enables the Y-limitation ↑Γ Y: input and
	// output transitions are kept only when their subject is a variable
	// in the set; synchronisations (τ) always remain.
	Observable map[string]bool
	// WitnessOnly restricts early-input instances to environment
	// variables when at least one variable candidate exists, falling back
	// to the parameter type otherwise. Thm. 4.10's footnote assumes Γ
	// contains a witness y:U for every input domain U; with witnesses
	// present, the variable instances subsume the anonymous type instance
	// for the Fig. 7 properties, and dropping it keeps continuations
	// trackable (an anonymous received channel could never be used under
	// the Y-limitation). The verifier enables this; plain exploration
	// keeps the paper's full [T→i] rule.
	WitnessOnly bool
	// Cache, when non-nil and built for the same Env/WitnessOnly pair,
	// memoises raw step lists per hash-consed type and synchronisation
	// matches per label identity. Sharing one Cache across explorations
	// (verify.VerifyAll does) shares their per-component work; the
	// Y-limitation is applied on top of cached entries, so a Cache may
	// serve semantics with different Observable sets.
	Cache *Cache
	// depthHit records that the unfold-depth guard fired somewhere below
	// the current raw computation; such (truncated) results are not
	// admitted into the cache.
	depthHit bool
	// l1comp/l1sync are the goroutine-local L1 in front of the shared
	// cache's lock-striped maps: exploration looks the same few hundred
	// distinct components and pairs up tens of thousands of times, so
	// serving repeats from an unsynchronised local map keeps the hot
	// loop lock-free (and keeps the serial engine as fast as it was
	// before the cache grew locks). Entries are immutable slices shared
	// with the L2 cache, so caching them locally is safe.
	l1comp map[types.ID][]CompStep
	l1sync map[[2]types.ID][]CompStep
}

// Fork returns a copy of s for use by another goroutine: it shares the
// environment, Y-limitation and (concurrency-safe) cache, but has its
// own depthHit bookkeeping and L1 memo. The Observable map is shared
// and must not be mutated while forks are live (exploration only reads
// it).
func (s *Semantics) Fork() *Semantics {
	clone := *s
	clone.depthHit = false
	clone.l1comp = nil
	clone.l1sync = nil
	return &clone
}

// Transitions returns all labelled transitions of t (Fig. 6), after
// applying the Y-limitation if configured. The returned slice may be
// shared with the semantics' cache and must not be mutated.
func (s *Semantics) Transitions(t types.Type) []Step {
	steps := s.rawOf(t, 0)
	if s.Observable == nil {
		return steps
	}
	kept := make([]Step, 0, len(steps))
	for _, st := range steps {
		if s.keep(st.Label) {
			kept = append(kept, st)
		}
	}
	return kept
}

// rawOf computes (or recalls) the raw transitions of t. Results are
// cached per interned type unless the computation was truncated by the
// unfold-depth guard. On a miss the steps are computed from the
// interner's *representative* of t (not t itself): the two are
// ≡-equivalent — which is all the semantics observes — and computing
// from the representative makes the stored entry a pure function of the
// interned identity, independent of which syntactic variant reached the
// cache first and of goroutine scheduling (see DESIGN.md on parallel
// exploration determinism).
func (s *Semantics) rawOf(t types.Type, depth int) []Step {
	c := s.Cache
	if !c.compatible(s) {
		return s.raw(t, depth)
	}
	id := c.in.Intern(t)
	if steps, ok := c.lookupSteps(id); ok {
		return steps
	}
	saved := s.depthHit
	s.depthHit = false
	steps := s.raw(c.in.TypeOf(id), depth)
	if !s.depthHit {
		steps = c.storeSteps(id, steps) // first-write-wins: adopt the winner
	}
	s.depthHit = s.depthHit || saved
	return steps
}

// keep implements Def. 4.9: i/o labels require a variable subject in Y.
func (s *Semantics) keep(l Label) bool {
	switch l := l.(type) {
	case Output:
		return s.observableSubject(l.Subject)
	case Input:
		return s.observableSubject(l.Subject)
	default:
		return true
	}
}

func (s *Semantics) observableSubject(sub types.Type) bool {
	v, ok := sub.(types.Var)
	return ok && s.Observable[v.Name]
}

const maxUnfoldDepth = 64

// raw computes the un-limited transitions.
func (s *Semantics) raw(t types.Type, depth int) []Step {
	if depth > maxUnfoldDepth {
		s.depthHit = true
		return nil
	}
	switch t := t.(type) {
	case types.Rec:
		// ≡: µt.T ≡ T{µt.T/t}; contractivity bounds the unfolding.
		return s.rawOf(s.unfold(t), depth+1)

	case types.Union:
		// τ[∨]: T ∨ U reduces to either branch.
		leaves := types.FlattenUnion(t)
		steps := make([]Step, 0, len(leaves))
		for _, leaf := range leaves {
			steps = append(steps, Step{Label: TauChoice{}, Next: leaf})
		}
		return steps

	case types.Out:
		return s.outSteps(t, depth)

	case types.In:
		return s.inSteps(t, depth)

	case types.Par:
		return s.parSteps(t, depth)

	default:
		// nil, proc, and non-process types have no transitions.
		return nil
	}
}

// outSteps implements [T→o] plus the reduction contexts o[E,T,U],
// o[S,E,U] (unions in channel or payload position resolve first).
func (s *Semantics) outSteps(t types.Out, depth int) []Step {
	if u, ok := t.Ch.(types.Union); ok {
		var steps []Step
		for _, leaf := range types.FlattenUnion(u) {
			steps = append(steps, Step{Label: TauChoice{}, Next: types.Out{Ch: leaf, Payload: t.Payload, Cont: t.Cont}})
		}
		return steps
	}
	if u, ok := t.Payload.(types.Union); ok {
		// A union payload that is itself a π-choice stays; only resolve
		// unions of *types* in payload position when they would otherwise
		// block nothing — per Fig. 6 the context o[S,E,U] permits it.
		var steps []Step
		for _, leaf := range types.FlattenUnion(u) {
			steps = append(steps, Step{Label: TauChoice{}, Next: types.Out{Ch: t.Ch, Payload: leaf, Cont: t.Cont}})
		}
		steps = append(steps, s.fireOut(t, depth)...)
		return steps
	}
	return s.fireOut(t, depth)
}

func (s *Semantics) fireOut(t types.Out, depth int) []Step {
	cont := t.Cont
	if pi, ok := types.UnfoldAll(cont).(types.Pi); ok {
		cont = pi.Cod
	}
	return []Step{{Label: Output{Subject: t.Ch, Payload: t.Payload}, Next: cont}}
}

// inSteps implements [T→i]: early input. The payload T′ is either the
// continuation's parameter type T itself, or any environment variable x
// with Γ ⊢ x ⩽ T; the chosen payload is substituted into the continuation
// type (the type-level substitution that tracks channel passing).
func (s *Semantics) inSteps(t types.In, depth int) []Step {
	pi, ok := types.UnfoldAll(t.Cont).(types.Pi)
	if !ok {
		return nil
	}
	var candidates []types.Type
	for _, name := range s.Env.Names() {
		v := types.Var{Name: name}
		if types.Subtype(s.Env, v, pi.Dom) {
			candidates = append(candidates, v)
		}
	}
	if !s.WitnessOnly || len(candidates) == 0 {
		candidates = append([]types.Type{pi.Dom}, candidates...)
	}
	steps := make([]Step, 0, len(candidates))
	for _, payload := range candidates {
		next := pi.Cod
		if pi.Var != "" {
			next = s.subst(pi.Cod, pi.Var, payload)
		}
		steps = append(steps, Step{Label: Input{Subject: t.Ch, Payload: payload}, Next: next})
	}
	return steps
}

// unfold and subst route the two tree rewrites of the semantics through
// the cache's interner memo when one is attached.
func (s *Semantics) unfold(t types.Type) types.Type {
	if s.Cache.compatible(s) {
		return s.Cache.in.Unfold(t)
	}
	return types.Unfold(t)
}

func (s *Semantics) subst(t types.Type, x string, payload types.Type) types.Type {
	if s.Cache.compatible(s) {
		return s.Cache.in.Subst(t, x, payload)
	}
	return types.Subst(t, x, payload)
}

// parSteps lifts component transitions through the parallel context and
// adds synchronisations [T→iox]/[T→io].
func (s *Semantics) parSteps(t types.Par, depth int) []Step {
	comps := types.FlattenPar(t)
	if len(comps) == 0 {
		return nil
	}
	perComp := make([][]Step, len(comps))
	for i, c := range comps {
		perComp[i] = s.rawOf(c, depth+1)
	}

	var steps []Step
	// Interleaving: each component may act on its own.
	for i, cs := range perComp {
		for _, st := range cs {
			steps = append(steps, Step{Label: st.Label, Next: replaceComp(comps, i, st.Next)})
		}
	}
	// Synchronisation: an output of component i meets an input of
	// component j (i ≠ j; ≡ commutativity makes the pair unordered).
	for i := range comps {
		for j := range comps {
			if i == j {
				continue
			}
			for _, so := range perComp[i] {
				out, ok := so.Label.(Output)
				if !ok {
					continue
				}
				for _, si := range perComp[j] {
					in, ok := si.Label.(Input)
					if !ok {
						continue
					}
					if !s.match(out, in) {
						continue
					}
					next := replaceComp2(comps, i, so.Next, j, si.Next)
					steps = append(steps, Step{
						Label: Comm{Sender: out.Subject, Receiver: in.Subject, Payload: out.Payload},
						Next:  next,
					})
				}
			}
		}
	}
	return steps
}

// match decides whether an output S⟨T⟩ and an input S′(T′) synchronise:
// Γ ⊢ S ▷◁ S′, and either the payload is a variable x transmitted as
// itself ([T→iox]: the input instance with payload exactly x), or a
// non-variable payload with Γ ⊢ T ⩽ T′ ([T→io]). The verdict depends
// only on the four label types (and Γ), so it is memoised per label
// identity when a cache is attached: the subtype checks behind ▷◁ and ⩽
// are the second-largest allocation source of bare exploration.
func (s *Semantics) match(out Output, in Input) bool {
	c := s.Cache
	if !c.compatible(s) {
		return s.matchUncached(out, in)
	}
	key := matchKey{
		outSub: c.in.Intern(out.Subject),
		outPay: c.in.Intern(out.Payload),
		inSub:  c.in.Intern(in.Subject),
		inPay:  c.in.Intern(in.Payload),
	}
	if v, ok := c.lookupMatch(key); ok {
		return v
	}
	v := s.matchUncached(out, in)
	c.storeMatch(key, v)
	return v
}

func (s *Semantics) matchUncached(out Output, in Input) bool {
	if !types.MightInteract(s.Env, out.Subject, in.Subject) {
		return false
	}
	if pv, ok := out.Payload.(types.Var); ok {
		iv, ok := in.Payload.(types.Var)
		return ok && iv.Name == pv.Name
	}
	if _, ok := in.Payload.(types.Var); ok {
		// [T→io] requires T ∉ X and pairs it with the early-input
		// instance at the parameter type, not a variable instance.
		return false
	}
	return types.Subtype(s.Env, out.Payload, in.Payload)
}

func replaceComp(comps []types.Type, i int, next types.Type) types.Type {
	out := make([]types.Type, 0, len(comps))
	for k, c := range comps {
		if k == i {
			out = append(out, types.FlattenPar(next)...)
		} else {
			out = append(out, c)
		}
	}
	return types.ParOf(out...)
}

func replaceComp2(comps []types.Type, i int, ni types.Type, j int, nj types.Type) types.Type {
	out := make([]types.Type, 0, len(comps))
	for k, c := range comps {
		switch k {
		case i:
			out = append(out, types.FlattenPar(ni)...)
		case j:
			out = append(out, types.FlattenPar(nj)...)
		default:
			out = append(out, c)
		}
	}
	return types.ParOf(out...)
}
