package verify

import (
	"fmt"

	"effpi/internal/lts"
	"effpi/internal/mucalc"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// Compile builds the right-hand-column formula of Fig. 7 for the
// requested property, instantiated with the action sets of Def. 4.8
// computed over the alphabet of m.
func Compile(env *types.Env, m *lts.LTS, p Property) (mucalc.Formula, error) {
	u := NewUses(env, m)
	switch p.Kind {
	case NonUsage:
		return compileNonUsage(u, p.Channels)
	case DeadlockFree:
		return compileDeadlockFree(u, p.Channels)
	case EventualOutput:
		return nil, fmt.Errorf("verify: ev-usage is checked by reachability (EvUsageHolds), not LTL")
	case Forwarding:
		return compileForwarding(u, p.From, p.To)
	case Reactive:
		return compileReactive(u, p.From)
	case Responsive:
		return compileResponsive(u, p.From)
	default:
		return nil, fmt.Errorf("verify: unknown property kind %d", p.Kind)
	}
}

// compileNonUsage implements Fig. 7(1):
//
//	T ↑Γ {xi} |= □(¬(∨i (UoΓ,T(xi))⊤))
//
// i.e. no position fires a potential output use of any probed channel.
func compileNonUsage(u *Uses, channels []string) (mucalc.Formula, error) {
	var all []typelts.Label
	for _, x := range channels {
		all = append(all, u.OutputUses(x)...)
	}
	set := mucalc.LabelSet("Uo("+joinNames(channels)+")", all...)
	return mucalc.Box(mucalc.NegProp{Set: set}), nil
}

// compileDeadlockFree implements Fig. 7(2):
//
//	T ↑Γ {xi} |= □(−Aτ)⊤ ∧ □((τ)⊤ ∨ ∨i ({xi(U′), xi⟨U′⟩})⊤)
//
// plus the ✔ disjunct: proper termination is not a deadlock (DESIGN.md).
func compileDeadlockFree(u *Uses, channels []string) (mucalc.Formula, error) {
	atau := mucalc.LabelSet("Aτ", u.ImpreciseTaus()...)
	var io []typelts.Label
	for _, x := range channels {
		io = append(io, u.ExactInputs(x)...)
		io = append(io, u.ExactOutputs(x)...)
	}
	ioSet := mucalc.LabelSet("io("+joinNames(channels)+")", io...)
	progress := mucalc.Or{
		L: mucalc.Prop{Set: mucalc.TauActions()},
		R: mucalc.Or{L: mucalc.Prop{Set: ioSet}, R: mucalc.Prop{Set: mucalc.DoneActions()}},
	}
	return mucalc.And{
		L: mucalc.Box(mucalc.NegProp{Set: atau}),
		R: mucalc.Box(progress),
	}, nil
}

// EvUsageHolds implements Fig. 7(3) in the existential (branching-time)
// reading used by the paper's mCRL2 backend — footnote 3 notes mCRL2
// checks branching-time formulas: µZ.⟨∨i xi⟨U′⟩⟩⊤ ∨ ⟨−Aτ⟩Z, i.e. some
// output use of a probed channel is reachable along imprecision-free
// transitions. (The universal LTL reading is rarely wanted: any system
// with an unfair scheduler run that starves xi would fail it.)
func EvUsageHolds(u *Uses, m *lts.LTS, channels []string) bool {
	atau := mucalc.LabelSet("Aτ", u.ImpreciseTaus()...)
	var outs []typelts.Label
	for _, x := range channels {
		outs = append(outs, u.ExactOutputs(x)...)
	}
	target := mucalc.LabelSet("out("+joinNames(channels)+")", outs...)

	// Evaluate both set predicates once per distinct label of the dense
	// alphabet, then walk the flat edge array with plain bool lookups.
	isTarget := make([]bool, len(m.Labels))
	isAtau := make([]bool, len(m.Labels))
	for i, l := range m.Labels {
		isTarget[i] = target.Contains(l)
		isAtau[i] = atau.Contains(l)
	}

	visited := make([]bool, m.Len())
	queue := []int{m.Initial}
	visited[m.Initial] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, e := range m.Out(s) {
			if isTarget[e.Label] {
				return true
			}
			if isAtau[e.Label] {
				continue // runs through imprecise synchronisations don't count
			}
			if !visited[e.Dst] {
				visited[e.Dst] = true
				queue = append(queue, int(e.Dst))
			}
		}
	}
	return false
}

// compileForwarding implements Fig. 7(4):
//
//	T ↑Γ {x,y} |= □( ({S(z) | S(z) ∈ Ui(x)})⊤ ⇒ ((−(Aτ ∪ Ui(x)))⊤ U (y⟨z⟩)⊤) )
//
// for every variable z received on x (a conjunction over the z occurring
// in the alphabet). The paper's caption reads (α)⊤ ⇒ ϕ as
// (α)⊤ ⇒ (α)ϕ: the until obligation starts after the input position.
func compileForwarding(u *Uses, x, y string) (mucalc.Formula, error) {
	ui := u.InputUses(x)
	zs := PayloadVars(ui)
	if len(zs) == 0 {
		// Nothing is ever received on x as a trackable variable: the
		// forwarding obligation is vacuous only if x has no input uses at
		// all; inputs of unknown payloads cannot be proven forwarded.
		if len(ui) == 0 {
			return mucalc.True{}, nil
		}
		return mucalc.False{}, nil
	}
	blockName := "Aτ∪Ui(" + x + ")"
	block := mucalc.LabelSet(blockName, append(u.ImpreciseTaus(), ui...)...)
	var phi mucalc.Formula = mucalc.True{}
	for _, z := range zs {
		trigger := mucalc.LabelSet(fmt.Sprintf("in(%s,%s)", x, z), InputsCarrying(ui, z)...)
		oblige := mucalc.LabelSet(fmt.Sprintf("%s⟨%s⟩", y, z), u.OutputsWithPayloadVar(y, z)...)
		clause := mucalc.Box(mucalc.Implies(
			mucalc.Prop{Set: trigger},
			mucalc.Next{F: mucalc.Until{
				L: mucalc.NegProp{Set: block},
				R: mucalc.Prop{Set: oblige},
			}},
		))
		phi = conj(phi, clause)
	}
	return phi, nil
}

// compileReactive implements Fig. 7(5), reading the schema through its
// stated intent — "t runs forever, and is always eventually able to
// receive inputs from x":
//
//	T ↑Γ {x} |= □(−Aτ)⊤ ∧ □♢({x(U′) | any U′})⊤
//
// Every run performs inputs on x infinitely often, with no imprecise
// synchronisation. (The literal right-column disjunction □((τ)⊤ ∨ …) is
// vacuous on closed compositions, whose positions are all τ; the □♢ form
// is the linear-time counterpart of the left column's □((τ)⊤ U (x(w))⊤).)
func compileReactive(u *Uses, x string) (mucalc.Formula, error) {
	atau := mucalc.LabelSet("Aτ", u.ImpreciseTaus()...)
	inSet := mucalc.LabelSet("in("+x+")", u.ExactInputs(x)...)
	return mucalc.And{
		L: mucalc.Box(mucalc.NegProp{Set: atau}),
		R: mucalc.Box(mucalc.Diamond(mucalc.Prop{Set: inSet})),
	}, nil
}

// compileResponsive implements Fig. 7(6):
//
//	T ↑Γ {x} |= □( ({S(z) | S(z) ∈ Ui(x)})⊤ ⇒ ((−(Aτ ∪ Ui(x)))⊤ U ({z⟨U′⟩ | any U′})⊤) )
//
// Whenever a channel z is received from x, z is eventually used to send
// a response, before x is read again.
func compileResponsive(u *Uses, x string) (mucalc.Formula, error) {
	ui := u.InputUses(x)
	zs := PayloadVars(ui)
	if len(zs) == 0 {
		if len(ui) == 0 {
			return mucalc.True{}, nil
		}
		return mucalc.False{}, nil
	}
	blockName := "Aτ∪Ui(" + x + ")"
	block := mucalc.LabelSet(blockName, append(u.ImpreciseTaus(), ui...)...)
	var phi mucalc.Formula = mucalc.True{}
	for _, z := range zs {
		trigger := mucalc.LabelSet(fmt.Sprintf("in(%s,%s)", x, z), InputsCarrying(ui, z)...)
		oblige := mucalc.LabelSet("out("+z+")", u.ExactOutputs(z)...)
		clause := mucalc.Box(mucalc.Implies(
			mucalc.Prop{Set: trigger},
			mucalc.Next{F: mucalc.Until{
				L: mucalc.NegProp{Set: block},
				R: mucalc.Prop{Set: oblige},
			}},
		))
		phi = conj(phi, clause)
	}
	return phi, nil
}

func conj(a, b mucalc.Formula) mucalc.Formula {
	if _, ok := a.(mucalc.True); ok {
		return b
	}
	if _, ok := b.(mucalc.True); ok {
		return a
	}
	return mucalc.And{L: a, R: b}
}

func joinNames(ns []string) string {
	out := ""
	for i, n := range ns {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}
