package verify

import (
	"effpi/internal/mucalc"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// This file compiles Fig. 7 schemas with *symbolic* action sets: instead
// of enumerating the members of each Def. 4.8 set over the alphabet of a
// fully explored LTS (compile.go), the sets are membership predicates
// evaluated per label as the checker encounters it. A predicate set and
// its enumerated counterpart agree on every label of the explored
// alphabet — the membership rule is the same — so verdicts coincide; the
// difference is that the predicate form needs no alphabet up front, which
// is what lets on-the-fly (early-exit) checking start before exploration.
//
// Only the schemas whose *structure* is alphabet-independent compile
// symbolically: NonUsage, DeadlockFree and Reactive. Forwarding and
// Responsive shape their formula around the payload variables actually
// received on the probe channel (PayloadVars over the alphabet), and
// EventualOutput is not LTL at all — those fall back to the full
// pipeline (compileSymbolic reports false).

// compileSymbolic builds the alphabet-independent formula for p, or
// reports that p's schema needs the explored alphabet.
//
// The formula is returned twice: whole (for Outcome.Formula and Replay)
// and as its top-level conjuncts, ordered for the on-the-fly engine. The
// engine checks conjuncts one at a time over a shared incremental
// exploration and short-circuits on the first failure — sound because a
// run violating any conjunct violates the conjunction. Order matters for
// the early-exit payoff: a conjunct that *holds* forces exhaustive
// exploration (proving □¬⟨Aτ⟩ means seeing every state), so the schema's
// main obligation — the part that actually fails on broken systems, and
// whose violations are found by a shallow dive — comes first and the Aτ
// sanity conjunct last.
func compileSymbolic(env *types.Env, p Property) (phi mucalc.Formula, conjuncts []mucalc.Formula, ok bool) {
	noImprecision := mucalc.Box(mucalc.NegProp{Set: impreciseTauSet(env)})
	switch p.Kind {
	case NonUsage:
		phi = mucalc.Box(mucalc.NegProp{Set: outputUsesSet(env, p.Channels)})
		return phi, []mucalc.Formula{phi}, true
	case DeadlockFree:
		progress := mucalc.Box(mucalc.Or{
			L: mucalc.Prop{Set: mucalc.TauActions()},
			R: mucalc.Or{
				L: mucalc.Prop{Set: exactIOSet(p.Channels)},
				R: mucalc.Prop{Set: mucalc.DoneActions()},
			},
		})
		return mucalc.And{L: noImprecision, R: progress},
			[]mucalc.Formula{progress, noImprecision}, true
	case Reactive:
		alwaysReceives := mucalc.Box(mucalc.Diamond(mucalc.Prop{Set: exactInputSet(p.From)}))
		return mucalc.And{L: noImprecision, R: alwaysReceives},
			[]mucalc.Formula{alwaysReceives, noImprecision}, true
	default:
		return nil, nil, false
	}
}

// outputUsesSet is the symbolic UoΓ,T(x1..xn) of Def. 4.8: outputs whose
// subject might be one of the probed channels, and communications whose
// sender might be (the same subtype test Uses.OutputUses enumerates
// with).
func outputUsesSet(env *types.Env, channels []string) mucalc.ActionSet {
	return mucalc.ActionSet{
		Name: "Uo(" + joinNames(channels) + ")",
		Contains: func(l typelts.Label) bool {
			var subject types.Type
			switch l := l.(type) {
			case typelts.Output:
				subject = l.Subject
			case typelts.Comm:
				subject = l.Sender
			default:
				return false
			}
			for _, x := range channels {
				if types.Subtype(env, types.Var{Name: x}, subject) {
					return true
				}
			}
			return false
		},
	}
}

// impreciseTauSet is the symbolic Aτ of Thm. 4.10: communications whose
// sender or receiver is not a variable of Γ.
func impreciseTauSet(env *types.Env) mucalc.ActionSet {
	isEnvVar := func(t types.Type) bool {
		v, ok := t.(types.Var)
		return ok && env.Has(v.Name)
	}
	return mucalc.ActionSet{
		Name: "Aτ",
		Contains: func(l typelts.Label) bool {
			c, ok := l.(typelts.Comm)
			return ok && (!isEnvVar(c.Sender) || !isEnvVar(c.Receiver))
		},
	}
}

// exactIOSet is the symbolic {xi(U′), xi⟨U′⟩}: labels whose subject is
// exactly one of the probed variables, free or synchronised.
func exactIOSet(channels []string) mucalc.ActionSet {
	return mucalc.ActionSet{
		Name: "io(" + joinNames(channels) + ")",
		Contains: func(l typelts.Label) bool {
			for _, x := range channels {
				switch l := l.(type) {
				case typelts.Input:
					if isVarNamed(l.Subject, x) {
						return true
					}
				case typelts.Output:
					if isVarNamed(l.Subject, x) {
						return true
					}
				case typelts.Comm:
					if isVarNamed(l.Sender, x) || isVarNamed(l.Receiver, x) {
						return true
					}
				}
			}
			return false
		},
	}
}

// exactInputSet is the symbolic {x(U′) | any U′}: labels receiving on
// exactly the variable x.
func exactInputSet(x string) mucalc.ActionSet {
	return mucalc.ActionSet{
		Name: "in(" + x + ")",
		Contains: func(l typelts.Label) bool {
			switch l := l.(type) {
			case typelts.Input:
				return isVarNamed(l.Subject, x)
			case typelts.Comm:
				return isVarNamed(l.Receiver, x)
			}
			return false
		},
	}
}
