package verify

import (
	"testing"

	"effpi/internal/lts"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

func tv(n string) types.Type { return types.Var{Name: n} }

// pongerType is Tpong z from Ex. 4.11:
// i[z, Π(replyTo: co[str]) o[replyTo, str, Π()nil]].
func pongerType() types.Type {
	return types.In{Ch: tv("z"),
		Cont: types.Pi{Var: "replyTo", Dom: types.ChanO{Elem: types.Str{}},
			Cod: types.Out{Ch: tv("replyTo"), Payload: types.Str{}, Cont: types.Thunk(types.Nil{})}}}
}

// TestEx411ResponsivePonger reproduces Ex. 4.11: ponger z is responsive
// on z — whenever a reply channel is received from z, it is eventually
// used to send a response. This is the *open-process* workflow: the
// environment (with the witness w of Thm. 4.10's footnote) interacts on
// z.
func TestEx411ResponsivePonger(t *testing.T) {
	env := types.EnvOf(
		"z", types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}},
		"w", types.ChanO{Elem: types.Str{}}, // witness for the input domain
	)
	o, err := Verify(Request{Env: env, Type: pongerType(),
		Property: Property{Kind: Responsive, From: "z"}})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds {
		t.Errorf("ponger must be responsive on z (Ex. 4.11); counterexample: %+v", o.Counterexample)
	}
}

// TestUnresponsiveAuditorStub reproduces the §1 discussion: an auditor
// typed In[aud, Π(a)End] receives one audit and terminates — composing it
// with a service that audits forever would lose audits. Its mailbox is
// not reactive (it does not run forever).
func TestUnresponsiveAuditorStub(t *testing.T) {
	env := types.EnvOf("aud", types.ChanIO{Elem: types.Str{}})
	oneShot := types.In{Ch: tv("aud"), Cont: types.Pi{Var: "a", Dom: types.Str{}, Cod: types.Nil{}}}
	o, err := Verify(Request{Env: env, Type: oneShot,
		Property: Property{Kind: Reactive, From: "aud"}})
	if err != nil {
		t.Fatal(err)
	}
	if o.Holds {
		t.Error("a single-shot auditor must not be reactive on aud")
	}
	// The looping auditor is reactive.
	looping := types.Rec{Var: "t", Body: types.In{Ch: tv("aud"),
		Cont: types.Pi{Var: "a", Dom: types.Str{}, Cod: types.RecVar{Name: "t"}}}}
	o, err = Verify(Request{Env: env, Type: looping,
		Property: Property{Kind: Reactive, From: "aud"}})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds {
		t.Errorf("the looping auditor must be reactive on aud: %+v", o.Counterexample)
	}
}

func TestNonUsageHoldsWhenUnused(t *testing.T) {
	env := types.EnvOf(
		"x", types.ChanIO{Elem: types.Int{}},
		"y", types.ChanIO{Elem: types.Int{}},
	)
	// A process that only ever uses x.
	p := types.Rec{Var: "t", Body: types.Out{Ch: tv("x"), Payload: types.Int{},
		Cont: types.Thunk(types.RecVar{Name: "t"})}}
	o, err := Verify(Request{Env: env, Type: p,
		Property: Property{Kind: NonUsage, Channels: []string{"y"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds {
		t.Error("non-usage of y must hold for a process using only x")
	}
	o, err = Verify(Request{Env: env, Type: p,
		Property: Property{Kind: NonUsage, Channels: []string{"x"}}})
	if err != nil {
		t.Fatal(err)
	}
	if o.Holds {
		t.Error("non-usage of x must fail for a process using x")
	}
}

// TestNonUsageImprecision: Ex. 3.5's T2 — after let-binding, the channel
// type degrades to cio[int], which is a *potential* use of x, so
// non-usage of x must fail (the supertype closure of Def. 4.8).
func TestNonUsageImprecision(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	t2 := types.Out{Ch: types.ChanIO{Elem: types.Int{}}, Payload: types.Int{},
		Cont: types.Thunk(types.Nil{})}
	// The output's subject cio[int] is a supertype of x̱, so it lands in
	// UoΓ,T(x). Under Y={x} the output subject is not a variable in Y and
	// is hidden, so exercise the set computation directly.
	sem := &typelts.Semantics{Env: env}
	m, err := lts.Explore(sem, t2, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := NewUses(env, m)
	if len(u.OutputUses("x")) == 0 {
		t.Error("Uo(x) must include the imprecise output on cio[int]")
	}
}

func TestAdmissibleRejections(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	cases := []struct {
		name string
		t    types.Type
	}{
		{"contains proc", types.Par{L: types.Proc{}, R: types.Nil{}}},
		{"unguarded recursion", types.Rec{Var: "t", Body: types.Par{L: types.RecVar{Name: "t"}, R: types.Nil{}}}},
		{"par under rec", types.Rec{Var: "t", Body: types.In{Ch: tv("x"),
			Cont: types.Pi{Var: "v", Dom: types.Int{},
				Cod: types.Par{L: types.RecVar{Name: "t"}, R: types.Nil{}}}}}},
		{"not a process type", types.Bool{}},
	}
	for _, c := range cases {
		if err := Admissible(env, c.t); err == nil {
			t.Errorf("%s: Admissible must reject %s", c.name, c.t)
		}
	}
}

func TestImpreciseTausBlockLiveness(t *testing.T) {
	// A communication whose sender subject is a channel *type* (not a
	// variable) is in Aτ; eventual usage must not rely on runs through it.
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	sys := types.Par{
		L: types.Out{Ch: types.ChanIO{Elem: types.Int{}}, Payload: types.Int{}, Cont: types.Thunk(
			types.Out{Ch: tv("x"), Payload: types.Int{}, Cont: types.Thunk(types.Nil{})})},
		R: types.In{Ch: tv("x"), Cont: types.Pi{Var: "v", Dom: types.Int{}, Cod: types.Nil{}}},
	}
	o, err := Verify(Request{Env: env, Type: sys,
		Property: Property{Kind: EventualOutput, Channels: []string{"x"}, Closed: true}})
	if err != nil {
		t.Fatal(err)
	}
	if o.Holds {
		t.Error("ev-usage must fail when the only path runs through an imprecise synchronisation")
	}
}

func TestObservablesForResponsiveAddsWitnesses(t *testing.T) {
	env := types.EnvOf(
		"z", types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}},
		"w", types.ChanO{Elem: types.Str{}},
		"unrelated", types.ChanIO{Elem: types.Int{}},
	)
	obs, err := ObservablesFor(env, Property{Kind: Responsive, From: "z"})
	if err != nil {
		t.Fatal(err)
	}
	has := map[string]bool{}
	for _, x := range obs {
		has[x] = true
	}
	if !has["z"] || !has["w"] {
		t.Errorf("observables must include z and the witness w, got %v", obs)
	}
	if has["unrelated"] {
		t.Errorf("unrelated channels must not be observable, got %v", obs)
	}
}

func TestClosedObservablesEmpty(t *testing.T) {
	env := types.EnvOf("z", types.ChanIO{Elem: types.Int{}})
	obs, err := ObservablesFor(env, Property{Kind: Reactive, From: "z", Closed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 0 {
		t.Errorf("closed mode must hide everything, got %v", obs)
	}
}

func TestUnknownProbeChannel(t *testing.T) {
	env := types.EnvOf("z", types.ChanIO{Elem: types.Int{}})
	_, err := Verify(Request{Env: env, Type: types.Nil{},
		Property: Property{Kind: Reactive, From: "nope"}})
	if err == nil {
		t.Error("probing an unbound channel must fail")
	}
}

func TestVerifyAllReusesLTS(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	p := types.Rec{Var: "t", Body: types.Out{Ch: tv("x"), Payload: types.Int{},
		Cont: types.Thunk(types.RecVar{Name: "t"})}}
	props := []Property{
		{Kind: NonUsage, Channels: []string{"x"}, Closed: true},
		{Kind: EventualOutput, Channels: []string{"x"}, Closed: true},
		{Kind: DeadlockFree, Channels: []string{"x"}, Closed: true},
	}
	outcomes, err := VerifyAll(env, p, props, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("expected 3 outcomes, got %d", len(outcomes))
	}
	if outcomes[0].LTS != outcomes[1].LTS || outcomes[1].LTS != outcomes[2].LTS {
		t.Error("closed properties with equal observables must share the explored LTS")
	}
	// Closed, output-only loop: deadlock-free (keeps firing), ev-usage...
	// under Y=∅ the output is hidden and cannot fire, so the process is
	// stuck: deadlock-free must FAIL and ev-usage must fail too.
	if outcomes[1].Holds {
		t.Error("ev-usage under closed mode must fail: the lone output has no partner")
	}
	if outcomes[2].Holds {
		t.Error("deadlock-free under closed mode must fail: the lone output is stuck")
	}
}

// TestVerifyAllReuseIsOrderInsensitive: two properties whose observable
// *sets* coincide but are enumerated in different orders (forwarding
// x→y vs y→x) must share one explored LTS — the reuse key sorts the
// observables before joining.
func TestVerifyAllReuseIsOrderInsensitive(t *testing.T) {
	env := types.EnvOf(
		"x", types.ChanIO{Elem: types.Int{}},
		"y", types.ChanIO{Elem: types.Int{}},
	)
	p := types.Rec{Var: "t", Body: types.In{Ch: tv("x"),
		Cont: types.Pi{Var: "v", Dom: types.Int{},
			Cod: types.Out{Ch: tv("y"), Payload: types.Int{}, Cont: types.Thunk(types.RecVar{Name: "t"})}}}}
	props := []Property{
		{Kind: Forwarding, From: "x", To: "y"}, // observables [x y]
		{Kind: Forwarding, From: "y", To: "x"}, // observables [y x] — same set
	}
	outcomes, err := VerifyAll(env, p, props, 0)
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0].LTS != outcomes[1].LTS {
		t.Error("equal observable sets in different orders must share the explored LTS")
	}
}

// miniPhilosophers builds a 2-philosopher / 2-fork system inline (the
// systems package depends on verify, so fixtures are restated here).
func miniPhilosophers() (*types.Env, types.Type, []Property) {
	unit := types.Unit{}
	env := types.EnvOf(
		"f0", types.ChanIO{Elem: unit},
		"f1", types.ChanIO{Elem: unit},
	)
	out := func(ch string, cont types.Type) types.Type {
		return types.Out{Ch: tv(ch), Payload: unit, Cont: types.Thunk(cont)}
	}
	in := func(ch, v string, cont types.Type) types.Type {
		return types.In{Ch: tv(ch), Cont: types.Pi{Var: v, Dom: unit, Cod: cont}}
	}
	fork := func(ch string) types.Type {
		return types.Rec{Var: "t", Body: out(ch, in(ch, "u", types.RecVar{Name: "t"}))}
	}
	phil := func(first, second string) types.Type {
		return types.Rec{Var: "t", Body: in(first, "u", in(second, "u2",
			out(first, out(second, types.RecVar{Name: "t"}))))}
	}
	sys := types.ParOf(fork("f0"), fork("f1"), phil("f0", "f1"), phil("f1", "f0"))
	props := []Property{
		{Kind: DeadlockFree, Closed: true},
		{Kind: EventualOutput, Channels: []string{"f0"}, Closed: true},
		{Kind: Forwarding, From: "f0", To: "f1", Closed: true},
		{Kind: NonUsage, Channels: []string{"f0"}, Closed: true},
		{Kind: Reactive, From: "f0", Closed: true},
		{Kind: Responsive, From: "f0", Closed: true},
	}
	return env, sys, props
}

// TestVerifyAllParallelismEquivalence runs the full six-property pipeline
// at Parallelism 1, 2 and 8 and asserts the observable results coincide
// exactly: verdicts, state counts, label alphabets and every CSR
// adjacency. This is the verify-layer face of the exploration
// determinism guarantee.
func TestVerifyAllParallelismEquivalence(t *testing.T) {
	env, sys, props := miniPhilosophers()
	base, err := VerifyAllWith(env, sys, props, AllOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		got, err := VerifyAllWith(env, sys, props, AllOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(got) != len(base) {
			t.Fatalf("parallelism %d: %d outcomes, want %d", par, len(got), len(base))
		}
		for i := range base {
			b, g := base[i], got[i]
			if g.Holds != b.Holds {
				t.Errorf("parallelism %d / %s: verdict %v, serial says %v", par, g.Property, g.Holds, b.Holds)
			}
			if g.States != b.States {
				t.Errorf("parallelism %d / %s: %d states, serial has %d", par, g.Property, g.States, b.States)
			}
			if g.LTS.Len() != b.LTS.Len() {
				t.Errorf("parallelism %d / %s: LTS sizes differ", par, g.Property)
				continue
			}
			for s := 0; s < b.LTS.Len(); s++ {
				be, ge := b.LTS.Out(s), g.LTS.Out(s)
				if len(be) != len(ge) {
					t.Errorf("parallelism %d / %s: state %d out-degree differs", par, g.Property, s)
					continue
				}
				for k := range be {
					if be[k] != ge[k] || b.LTS.LabelOf(be[k]).Key() != g.LTS.LabelOf(ge[k]).Key() {
						t.Errorf("parallelism %d / %s: state %d edge %d differs", par, g.Property, s, k)
					}
				}
			}
		}
	}
}

// TestVerifyAllErrorContract checks the concurrent pipeline preserves the
// serial error semantics: outcomes up to the first failing property, and
// that property's wrapped error.
func TestVerifyAllErrorContract(t *testing.T) {
	env, sys, _ := miniPhilosophers()
	props := []Property{
		{Kind: DeadlockFree, Closed: true},
		{Kind: Reactive, From: "nope", Closed: true}, // unbound probe
		{Kind: NonUsage, Channels: []string{"f0"}, Closed: true},
	}
	for _, par := range []int{1, 4} {
		outcomes, err := VerifyAllWith(env, sys, props, AllOptions{Parallelism: par})
		if err == nil {
			t.Fatalf("parallelism %d: unbound probe channel must fail", par)
		}
		if len(outcomes) != 1 {
			t.Errorf("parallelism %d: %d outcomes before the failure, want 1", par, len(outcomes))
		}
	}
}

func TestDeadlockFreeOpenOutput(t *testing.T) {
	// The same output-only loop verified OPEN on x keeps firing forever:
	// deadlock-free modulo {x} holds.
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	p := types.Rec{Var: "t", Body: types.Out{Ch: tv("x"), Payload: types.Int{},
		Cont: types.Thunk(types.RecVar{Name: "t"})}}
	o, err := Verify(Request{Env: env, Type: p,
		Property: Property{Kind: DeadlockFree, Channels: []string{"x"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds {
		t.Errorf("deadlock-free modulo {x} must hold for the open output loop: %+v", o.Counterexample)
	}
}
