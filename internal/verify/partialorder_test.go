package verify

import (
	"reflect"
	"strings"
	"testing"
)

// TestParsePartialOrder covers the flag/wire-name round trip and the
// valid-values error contract shared with ParseSymmetry/ParseReduction.
func TestParsePartialOrder(t *testing.T) {
	for _, tc := range []struct {
		name string
		want PartialOrderMode
	}{{"off", PartialOrderOff}, {"on", PartialOrderOn}} {
		got, err := ParsePartialOrder(tc.name)
		if err != nil || got != tc.want {
			t.Errorf("ParsePartialOrder(%q) = %v, %v", tc.name, got, err)
		}
		if got.String() != tc.name {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.name)
		}
	}
	_, err := ParsePartialOrder("ample")
	if err == nil {
		t.Fatal("unknown partial-order mode must error")
	}
	for _, want := range []string{`"ample"`, "off", "on"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("ParsePartialOrder error %q does not mention %s", err, want)
		}
	}
}

// TestPartialOrderVerdictsMatchOff is the core differential contract at
// the single-request level: for every fixture property, the ample-
// reduced verification returns the same verdict as the reference
// pipeline, explores at most as many states (byte-identically at every
// worker count), and a FAIL carries a witness the replay oracle
// validates against the reduced LTS itself — reduced runs are concrete
// runs.
func TestPartialOrderVerdictsMatchOff(t *testing.T) {
	env, sys := symPairs(4)
	sawReduction, sawFail := false, false
	for _, p := range symProps() {
		base, err := Verify(Request{Env: env, Type: sys, Property: p, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		var serial *Outcome
		for _, par := range []int{1, 2, 8} {
			por, err := Verify(Request{Env: env, Type: sys, Property: p, Parallelism: par, PartialOrder: PartialOrderOn})
			if err != nil {
				t.Fatalf("%s par %d: %v", p, par, err)
			}
			if por.Holds != base.Holds {
				t.Errorf("%s par %d: reduced verdict %v, reference %v", p, par, por.Holds, base.Holds)
			}
			if por.PartialOrder != porEligible(p.Kind) {
				t.Errorf("%s par %d: PartialOrder flag %v, eligibility %v", p, par, por.PartialOrder, porEligible(p.Kind))
			}
			if por.StatesExplored > base.States {
				t.Errorf("%s par %d: explored %d states, full space has %d", p, par, por.StatesExplored, base.States)
			}
			if !por.PartialOrder && por.States != base.States {
				t.Errorf("%s par %d: disengaged mode changed States %d -> %d", p, par, base.States, por.States)
			}
			if par == 1 {
				serial = por
				continue
			}
			if por.StatesExplored != serial.StatesExplored {
				t.Errorf("%s par %d: explored %d states, serial reduced run explored %d", p, par, por.StatesExplored, serial.StatesExplored)
			}
			if !sameWitness(por, serial) {
				t.Errorf("%s par %d: witness differs from the serial reduced run's", p, par)
			}
		}
		if serial.PartialOrder && serial.StatesExplored < base.States {
			sawReduction = true
		}
		if serial.PartialOrder && !serial.Holds {
			sawFail = true
			if serial.Witness == nil {
				t.Fatalf("%s: reduced FAIL without witness", p)
			}
			if err := Replay(serial); err != nil {
				t.Errorf("%s: reduced witness does not replay: %v", p, err)
			}
		}
	}
	if !sawReduction {
		t.Error("no fixture property explored fewer states — partial order never engaged")
	}
	if !sawFail {
		t.Error("no reduced FAIL — the replay route was never exercised")
	}
}

func sameWitness(a, b *Outcome) bool {
	if (a.Witness == nil) != (b.Witness == nil) {
		return false
	}
	return a.Witness == nil || reflect.DeepEqual(a.Witness.Raw, b.Witness.Raw)
}

// TestPartialOrderSymmetryPrecedence: with both exploration-time
// reductions requested on a symmetric closed system, symmetry claims the
// exploration — the outcome carries orbit bookkeeping, not the
// PartialOrder flag — and the verdict still matches the reference.
func TestPartialOrderSymmetryPrecedence(t *testing.T) {
	env, sys := symPairs(4)
	p := Property{Kind: DeadlockFree, Channels: []string{"z1"}, Closed: true}
	base, err := Verify(Request{Env: env, Type: sys, Property: p})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Verify(Request{Env: env, Type: sys, Property: p, Symmetry: SymmetryOn, PartialOrder: PartialOrderOn})
	if err != nil {
		t.Fatal(err)
	}
	if both.PartialOrder {
		t.Error("PartialOrder engaged although symmetry claimed the exploration")
	}
	if both.LTS.Sym == nil {
		t.Error("symmetry did not claim the exploration of a symmetric system")
	}
	if both.Holds != base.Holds || both.States != base.States {
		t.Errorf("verdict/States (%v, %d) differ from reference (%v, %d)", both.Holds, both.States, base.Holds, base.States)
	}
}

// TestPartialOrderComposesWithReduction: the bisimulation Reduce stage
// runs downstream of the ample exploration — the quotient is built over
// the reduced LTS — with identical verdicts and a replay-validated
// witness on FAIL.
func TestPartialOrderComposesWithReduction(t *testing.T) {
	env, sys := symPairs(3)
	for _, p := range symProps() {
		if p.Kind == Forwarding {
			continue // not POR-eligible; covered by the matrix tests
		}
		base, err := Verify(Request{Env: env, Type: sys, Property: p})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		both, err := Verify(Request{Env: env, Type: sys, Property: p, PartialOrder: PartialOrderOn, Reduction: ReduceStrong})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if both.Holds != base.Holds {
			t.Errorf("%s: verdict %v under POR+reduction, reference %v", p, both.Holds, base.Holds)
		}
		if !both.PartialOrder {
			t.Errorf("%s: PartialOrder disengaged under composition", p)
		}
		if both.ReducedStates == 0 || both.ReducedStates > both.StatesExplored {
			t.Errorf("%s: quotient has %d blocks over %d reduced states", p, both.ReducedStates, both.StatesExplored)
		}
	}
}

// TestPartialOrderEarlyExit: the on-the-fly engine accepts the ample
// filter — the incremental exploration expands reduced successor sets —
// with matching verdicts and the PartialOrder flag set.
func TestPartialOrderEarlyExit(t *testing.T) {
	env, sys := symPairs(3)
	for _, p := range symProps() {
		if !porEligible(p.Kind) {
			continue
		}
		base, err := Verify(Request{Env: env, Type: sys, Property: p})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		otf, err := Verify(Request{Env: env, Type: sys, Property: p, PartialOrder: PartialOrderOn, EarlyExit: true})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !otf.EarlyExit || !otf.PartialOrder {
			t.Errorf("%s: EarlyExit=%v PartialOrder=%v, want both", p, otf.EarlyExit, otf.PartialOrder)
		}
		if otf.Holds != base.Holds {
			t.Errorf("%s: on-the-fly reduced verdict %v, reference %v", p, otf.Holds, base.Holds)
		}
		if otf.StatesExplored > base.States {
			t.Errorf("%s: discovered %d states, full space has %d", p, otf.StatesExplored, base.States)
		}
	}
}

// TestPartialOrderReuseIgnored: a Reuse request verifies on the given
// LTS untouched — the mode never rewrites an exploration it did not run.
func TestPartialOrderReuseIgnored(t *testing.T) {
	env, sys := symPairs(3)
	p := Property{Kind: DeadlockFree, Channels: []string{"z1"}, Closed: true}
	base, err := Verify(Request{Env: env, Type: sys, Property: p})
	if err != nil {
		t.Fatal(err)
	}
	reused, err := Verify(Request{Env: env, Type: sys, Property: p, Reuse: base.LTS, PartialOrder: PartialOrderOn})
	if err != nil {
		t.Fatal(err)
	}
	if reused.PartialOrder {
		t.Error("PartialOrder engaged on a Reuse request")
	}
	if reused.StatesExplored != base.StatesExplored {
		t.Errorf("reuse explored %d states, want the given LTS's %d", reused.StatesExplored, base.StatesExplored)
	}
}

// TestVerifyAllPartialOrderMatchesSingle: the batch pipeline routes
// eligible properties through their own ample explorations and the rest
// through the shared group LTS — outcomes must equal the single-request
// path's at every batch parallelism.
func TestVerifyAllPartialOrderMatchesSingle(t *testing.T) {
	env, sys := symPairs(3)
	props := symProps()
	want := make([]*Outcome, len(props))
	for i, p := range props {
		o, err := Verify(Request{Env: env, Type: sys, Property: p, PartialOrder: PartialOrderOn})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		want[i] = o
	}
	for _, par := range []int{1, 2, 8} {
		got, err := VerifyAllWith(env, sys, props, AllOptions{Parallelism: par, PartialOrder: PartialOrderOn})
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		for i := range props {
			if got[i].Holds != want[i].Holds || got[i].PartialOrder != want[i].PartialOrder ||
				got[i].StatesExplored != want[i].StatesExplored {
				t.Errorf("par %d %s: batch outcome (%v, por=%v, explored=%d) differs from single request (%v, por=%v, explored=%d)",
					par, props[i], got[i].Holds, got[i].PartialOrder, got[i].StatesExplored,
					want[i].Holds, want[i].PartialOrder, want[i].StatesExplored)
			}
		}
	}
}

// TestVerifyAllPartialOrderSymmetryPrecedence: with both modes on over a
// symmetric batch, the closed eligible properties ride the shared orbit
// exploration (symmetry wins), and outcomes match the symmetry-only
// batch exactly.
func TestVerifyAllPartialOrderSymmetryPrecedence(t *testing.T) {
	env, sys := symPairs(4)
	props := symProps()
	symOnly, err := VerifyAllWith(env, sys, props, AllOptions{Symmetry: SymmetryOn})
	if err != nil {
		t.Fatal(err)
	}
	both, err := VerifyAllWith(env, sys, props, AllOptions{Symmetry: SymmetryOn, PartialOrder: PartialOrderOn})
	if err != nil {
		t.Fatal(err)
	}
	for i := range props {
		if both[i].PartialOrder {
			t.Errorf("%s: PartialOrder engaged although the batch has a symmetry group", props[i])
		}
		if both[i].Holds != symOnly[i].Holds || both[i].StatesExplored != symOnly[i].StatesExplored {
			t.Errorf("%s: outcome (%v, %d) differs from symmetry-only batch (%v, %d)",
				props[i], both[i].Holds, both[i].StatesExplored, symOnly[i].Holds, symOnly[i].StatesExplored)
		}
	}
}
