package verify

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"effpi/internal/types"
)

// symPairs builds n independent ping-pong pairs sharing one abstract
// shape: pair i owns a request channel zi and a reply channel yi, the
// pinger sends on zi then waits on yi, the ponger mirrors it. Any
// permutation of whole pairs is an automorphism of the composition, so
// DetectSymmetry finds a non-trivial group whenever two or more pairs
// are unpinned — the fixture the symmetry-mode tests revolve around.
func symPairs(n int) (*types.Env, types.Type) {
	env := types.NewEnv()
	str := types.Str{}
	comps := make([]types.Type, 0, 2*n)
	for i := 1; i <= n; i++ {
		z, y := fmt.Sprintf("z%d", i), fmt.Sprintf("y%d", i)
		env = env.MustExtend(z, types.ChanIO{Elem: str})
		env = env.MustExtend(y, types.ChanIO{Elem: str})
		comps = append(comps,
			types.Out{Ch: tv(z), Payload: str, Cont: types.Thunk(
				types.In{Ch: tv(y), Cont: types.Pi{Var: "r", Dom: str, Cod: types.Nil{}}})},
			types.In{Ch: tv(z), Cont: types.Pi{Var: "s", Dom: str, Cod: types.Out{
				Ch: tv(y), Payload: str, Cont: types.Thunk(types.Nil{})}}})
	}
	return env, types.ParOf(comps...)
}

// symProps exercises PASS and FAIL verdicts over the pair fixture, all
// closed (symmetry only engages when the observable set is empty). The
// non-usage probe on z1 fails — z1 is used — which is the property the
// witness-lift assertions ride on.
func symProps() []Property {
	return []Property{
		{Kind: DeadlockFree, Channels: []string{"z1"}, Closed: true},
		{Kind: NonUsage, Channels: []string{"z1"}, Closed: true},
		{Kind: Reactive, From: "z1", Closed: true},
		{Kind: Forwarding, From: "z1", To: "y1", Closed: true},
	}
}

// TestParseSymmetry covers the flag/wire-name round trip and the
// valid-values error contract shared with ParseReduction.
func TestParseSymmetry(t *testing.T) {
	for _, tc := range []struct {
		name string
		want SymmetryMode
	}{{"off", SymmetryOff}, {"on", SymmetryOn}} {
		got, err := ParseSymmetry(tc.name)
		if err != nil || got != tc.want {
			t.Errorf("ParseSymmetry(%q) = %v, %v", tc.name, got, err)
		}
		if got.String() != tc.name {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.name)
		}
	}
	_, err := ParseSymmetry("orbit")
	if err == nil {
		t.Fatal("unknown symmetry mode must error")
	}
	for _, want := range []string{`"orbit"`, "off", "on"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseSymmetry error %q does not mention %s", err, want)
		}
	}
}

// TestParseReductionErrorListsValues: the sibling parser names the valid
// modes too (the CLIs and effpid forward these errors verbatim).
func TestParseReductionErrorListsValues(t *testing.T) {
	_, err := ParseReduction("weak")
	if err == nil {
		t.Fatal("unknown reduction must error")
	}
	for _, want := range []string{`"weak"`, "off", "strong"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseReduction error %q does not mention %s", err, want)
		}
	}
}

// TestSymmetryVerdictsMatchOff is the core differential contract: for
// every fixture property, symmetric verification returns the same
// verdict and the same concrete States count as the reference pipeline,
// explores at most as many states, and every FAIL carries a lifted
// witness over a concrete fragment (WitnessLTS) that the replay oracle
// validates — byte-identically at every worker count.
func TestSymmetryVerdictsMatchOff(t *testing.T) {
	env, sys := symPairs(4)
	sawReduction, sawFail := false, false
	for _, p := range symProps() {
		base, err := Verify(Request{Env: env, Type: sys, Property: p, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		var serial *Outcome
		for _, par := range []int{1, 2, 8} {
			sym, err := Verify(Request{Env: env, Type: sys, Property: p, Parallelism: par, Symmetry: SymmetryOn})
			if err != nil {
				t.Fatalf("%s par %d: %v", p, par, err)
			}
			if sym.Holds != base.Holds {
				t.Errorf("%s par %d: symmetric verdict %v, reference %v", p, par, sym.Holds, base.Holds)
			}
			if sym.States != base.States {
				t.Errorf("%s par %d: symmetric States %d, reference %d (States must stay the concrete-equivalent count)", p, par, sym.States, base.States)
			}
			if sym.StatesExplored >= base.States {
				t.Errorf("%s par %d: explored %d orbit states, no fewer than the %d concrete ones", p, par, sym.StatesExplored, base.States)
			} else {
				sawReduction = true
			}
			if par == 1 {
				serial = sym
			}
			if sym.StatesExplored != serial.StatesExplored {
				t.Errorf("%s par %d: explored %d states, serial symmetric run explored %d", p, par, sym.StatesExplored, serial.StatesExplored)
			}
			if !reflect.DeepEqual(rawWitness(sym), rawWitness(serial)) {
				t.Errorf("%s par %d: lifted witness differs from the serial symmetric run's", p, par)
			}
			if sym.Holds {
				continue
			}
			sawFail = true
			if sym.WitnessLTS == nil {
				t.Fatalf("%s par %d: symmetric FAIL without a lifted witness fragment", p, par)
			}
			if err := Replay(sym); err != nil {
				t.Errorf("%s par %d: lifted witness does not replay: %v", p, par, err)
			}
		}
	}
	if !sawReduction {
		t.Error("no property explored fewer states than the concrete space — symmetry never engaged")
	}
	if !sawFail {
		t.Error("no property failed — the witness lift was never exercised")
	}
}

func rawWitness(o *Outcome) interface{} {
	if o.Witness == nil {
		return nil
	}
	return o.Witness.Raw
}

// TestSymmetryComposesWithReduction: the orbit LTS feeds the Reduce
// stage like any other; verdicts still match and FAILs survive the
// two-stage lift (quotient blocks → orbit states → concrete run).
func TestSymmetryComposesWithReduction(t *testing.T) {
	env, sys := symPairs(4)
	for _, p := range symProps() {
		base, err := Verify(Request{Env: env, Type: sys, Property: p})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		both, err := Verify(Request{Env: env, Type: sys, Property: p, Symmetry: SymmetryOn, Reduction: ReduceStrong})
		if err != nil {
			t.Fatalf("%s symmetry+reduction: %v", p, err)
		}
		if both.Holds != base.Holds {
			t.Errorf("%s: symmetry+reduction verdict %v, reference %v", p, both.Holds, base.Holds)
		}
		if both.ReducedStates > both.StatesExplored {
			t.Errorf("%s: quotient (%d blocks) larger than the orbit space it abstracts (%d)", p, both.ReducedStates, both.StatesExplored)
		}
		if !both.Holds {
			if err := Replay(both); err != nil {
				t.Errorf("%s: two-stage lifted witness does not replay: %v", p, err)
			}
		}
	}
}

// TestSymmetryEarlyExit: the on-the-fly engine explores orbit
// representatives too — verdicts match the full reference pipeline,
// never more states are touched than the concrete count, and early
// FAILs lift and replay like batch ones.
func TestSymmetryEarlyExit(t *testing.T) {
	env, sys := symPairs(4)
	for _, p := range symProps() {
		switch p.Kind {
		case NonUsage, DeadlockFree, Reactive:
		default:
			continue
		}
		base, err := Verify(Request{Env: env, Type: sys, Property: p})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		early, err := Verify(Request{Env: env, Type: sys, Property: p, EarlyExit: true, Symmetry: SymmetryOn})
		if err != nil {
			t.Fatalf("%s early+symmetry: %v", p, err)
		}
		if !early.EarlyExit {
			t.Fatalf("%s: early-exit request did not take the on-the-fly path", p)
		}
		if early.Holds != base.Holds {
			t.Errorf("%s: early symmetric verdict %v, reference %v", p, early.Holds, base.Holds)
		}
		if early.StatesExplored > base.States {
			t.Errorf("%s: early symmetric run discovered %d states, concrete space has %d", p, early.StatesExplored, base.States)
		}
		if !early.Holds {
			if err := Replay(early); err != nil {
				t.Errorf("%s: early symmetric witness does not replay: %v", p, err)
			}
		}
	}
}

// TestSymmetryOpenPropertyFallsBack: symmetry needs a closed system —
// open properties Y-limit the semantics, the bundle group is not sound
// against observable probes, and the request must silently run the
// reference pipeline instead (explored == concrete count).
func TestSymmetryOpenPropertyFallsBack(t *testing.T) {
	env, sys := symPairs(3)
	p := Property{Kind: NonUsage, Channels: []string{"z1"}}
	base, err := Verify(Request{Env: env, Type: sys, Property: p})
	if err != nil {
		t.Fatal(err)
	}
	sym, err := Verify(Request{Env: env, Type: sys, Property: p, Symmetry: SymmetryOn})
	if err != nil {
		t.Fatal(err)
	}
	if sym.Holds != base.Holds || sym.States != base.States {
		t.Errorf("open property: symmetric (holds=%v states=%d), reference (holds=%v states=%d)",
			sym.Holds, sym.States, base.Holds, base.States)
	}
	if sym.StatesExplored != sym.States {
		t.Errorf("open property must fall back to concrete exploration: explored %d, states %d", sym.StatesExplored, sym.States)
	}
}

// TestVerifyAllSymmetryMatchesSingle: the batched pipeline under
// symmetry agrees with per-property requests on verdicts, concrete
// States and witness replays, at every batch parallelism — including
// the serial scheduling path, which must prepare groups identically.
func TestVerifyAllSymmetryMatchesSingle(t *testing.T) {
	env, sys := symPairs(4)
	props := symProps()
	singles := make([]*Outcome, len(props))
	for i, p := range props {
		o, err := Verify(Request{Env: env, Type: sys, Property: p})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		singles[i] = o
	}
	var serial []*Outcome
	for _, par := range []int{1, 2, 8} {
		outs, err := VerifyAllWith(env, sys, props, AllOptions{Parallelism: par, Symmetry: SymmetryOn})
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		if par == 1 {
			serial = outs
		}
		for i := range props {
			if outs[i].Holds != singles[i].Holds {
				t.Errorf("par %d %s: batched symmetric verdict %v, single %v", par, props[i], outs[i].Holds, singles[i].Holds)
			}
			if outs[i].States != singles[i].States {
				t.Errorf("par %d %s: batched States %d, single %d", par, props[i], outs[i].States, singles[i].States)
			}
			if !reflect.DeepEqual(rawWitness(outs[i]), rawWitness(serial[i])) {
				t.Errorf("par %d %s: witness differs from the serial batched run's", par, props[i])
			}
			if outs[i].Holds || props[i].Kind == EventualOutput {
				continue
			}
			if err := Replay(outs[i]); err != nil {
				t.Errorf("par %d %s: batched symmetric witness does not replay: %v", par, props[i], err)
			}
		}
	}
}

// TestVerifyAllJointQuotient: under ReduceStrong the batch refines one
// joint partition per exploration group and projects per-property
// quotients from it. The projection must be invisible in the results:
// verdicts, States and ReducedStates all equal the per-property Verify
// pipeline's, at every batch parallelism, with replaying witnesses.
func TestVerifyAllJointQuotient(t *testing.T) {
	env, sys := symPairs(3)
	props := symProps()
	singles := make([]*Outcome, len(props))
	for i, p := range props {
		o, err := Verify(Request{Env: env, Type: sys, Property: p, Reduction: ReduceStrong})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		singles[i] = o
	}
	var serial []*Outcome
	for _, par := range []int{1, 2, 8} {
		outs, err := VerifyAllWith(env, sys, props, AllOptions{Parallelism: par, Reduction: ReduceStrong})
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		if par == 1 {
			serial = outs
		}
		for i := range props {
			if outs[i].Holds != singles[i].Holds {
				t.Errorf("par %d %s: joint verdict %v, single %v", par, props[i], outs[i].Holds, singles[i].Holds)
			}
			if outs[i].ReducedStates != singles[i].ReducedStates {
				t.Errorf("par %d %s: joint quotient has %d blocks, direct quotient %d — projection changed the partition",
					par, props[i], outs[i].ReducedStates, singles[i].ReducedStates)
			}
			if !reflect.DeepEqual(rawWitness(outs[i]), rawWitness(serial[i])) {
				t.Errorf("par %d %s: witness differs from the serial batched run's", par, props[i])
			}
			if outs[i].Holds || props[i].Kind == EventualOutput {
				continue
			}
			if err := Replay(outs[i]); err != nil {
				t.Errorf("par %d %s: joint-quotient witness does not replay: %v", par, props[i], err)
			}
		}
	}
}

// TestVerifyAllJointWithSymmetry: the full stack — orbit exploration,
// joint refinement over the orbit LTS, per-property projection, and the
// two-stage witness lift — agrees with the unreduced asymmetric batch.
func TestVerifyAllJointWithSymmetry(t *testing.T) {
	env, sys := symPairs(4)
	props := symProps()
	base, err := VerifyAllWith(env, sys, props, AllOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		outs, err := VerifyAllWith(env, sys, props, AllOptions{Parallelism: par, Symmetry: SymmetryOn, Reduction: ReduceStrong})
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		for i := range props {
			if outs[i].Holds != base[i].Holds {
				t.Errorf("par %d %s: verdict %v, reference %v", par, props[i], outs[i].Holds, base[i].Holds)
			}
			if outs[i].States != base[i].States {
				t.Errorf("par %d %s: States %d, reference %d", par, props[i], outs[i].States, base[i].States)
			}
			if outs[i].Holds || props[i].Kind == EventualOutput {
				continue
			}
			if err := Replay(outs[i]); err != nil {
				t.Errorf("par %d %s: witness does not replay: %v", par, props[i], err)
			}
		}
	}
}

// TestCombineClassesDeterministic: the product partition is a pure
// function of its inputs with dense, first-encounter-ordered class ids
// — the invariant the joint quotient's cross-parallelism determinism
// rests on.
func TestCombineClassesDeterministic(t *testing.T) {
	a := []int32{0, 1, 0, 2, 1, 0}
	b := []int32{0, 0, 1, 1, 0, 0}
	got := combineClasses(a, b)
	want := []int32{0, 1, 2, 3, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("combineClasses = %v, want %v", got, want)
	}
	if again := combineClasses(a, b); !reflect.DeepEqual(again, got) {
		t.Errorf("combineClasses is not deterministic: %v then %v", got, again)
	}
	// Refining a partition by itself must be the identity on block
	// structure (same grouping, dense renumbering).
	self := combineClasses(a, a)
	if !reflect.DeepEqual(self, []int32{0, 1, 0, 2, 1, 0}) {
		t.Errorf("combineClasses(a, a) = %v, want the dense renumbering of a", self)
	}
}
