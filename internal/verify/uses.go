package verify

import (
	"effpi/internal/lts"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// This file implements Def. 4.8 (input/output uses) and the auxiliary
// action sets needed by the Fig. 7 formulas, all computed over the finite
// alphabet AΓ(T) of the explored LTS.
//
// Synchronisation labels τ[S,S′] count as an output use of S and an input
// use of S′: a communication is an output that met an input. This mirrors
// the paper's mCRL2 encoding into CCS without restriction, where the two
// halves of a synchronisation remain visible; without it, every liveness
// property would be vacuously false on closed compositions (whose runs
// consist solely of synchronisations).

// Uses collects the action-set ingredients of the Fig. 7 schemas for a
// fixed environment and explored LTS.
type Uses struct {
	env      *types.Env
	alphabet []typelts.Label
}

// NewUses analyses the alphabet of m in env.
func NewUses(env *types.Env, m *lts.LTS) *Uses {
	return &Uses{env: env, alphabet: m.Alphabet()}
}

// InputUses is UiΓ,T(x): all labels of the alphabet that might be fired
// when a process uses x for input — input labels S(U′) and communications
// τ[·,S′:U′] with Γ ⊢ x ⩽ S (accounting for imprecise typing, Ex. 3.5).
func (u *Uses) InputUses(x string) []typelts.Label {
	xv := types.Var{Name: x}
	var out []typelts.Label
	for _, l := range u.alphabet {
		switch l := l.(type) {
		case typelts.Input:
			if types.Subtype(u.env, xv, l.Subject) {
				out = append(out, l)
			}
		case typelts.Comm:
			if types.Subtype(u.env, xv, l.Receiver) {
				out = append(out, l)
			}
		}
	}
	return out
}

// OutputUses is UoΓ,T(x): the output analogue of InputUses.
func (u *Uses) OutputUses(x string) []typelts.Label {
	xv := types.Var{Name: x}
	var out []typelts.Label
	for _, l := range u.alphabet {
		switch l := l.(type) {
		case typelts.Output:
			if types.Subtype(u.env, xv, l.Subject) {
				out = append(out, l)
			}
		case typelts.Comm:
			if types.Subtype(u.env, xv, l.Sender) {
				out = append(out, l)
			}
		}
	}
	return out
}

// ImpreciseTaus is the set Aτ of Thm. 4.10: synchronisation labels
// τ[S,S′] where S or S′ is not a variable of Γ. Such a communication
// cannot be traced to concrete channels, so liveness arguments must not
// rely on runs containing it.
func (u *Uses) ImpreciseTaus() []typelts.Label {
	var out []typelts.Label
	for _, l := range u.alphabet {
		if c, ok := l.(typelts.Comm); ok {
			if !u.isEnvVar(c.Sender) || !u.isEnvVar(c.Receiver) {
				out = append(out, l)
			}
		}
	}
	return out
}

func (u *Uses) isEnvVar(t types.Type) bool {
	v, ok := t.(types.Var)
	return ok && u.env.Has(v.Name)
}

// ExactInputs returns the labels receiving on exactly the variable x:
// inputs x(U′) and communications τ[·,x:U′] (the sets {x(U′) | any U′}
// of Fig. 7).
func (u *Uses) ExactInputs(x string) []typelts.Label {
	var out []typelts.Label
	for _, l := range u.alphabet {
		switch l := l.(type) {
		case typelts.Input:
			if isVarNamed(l.Subject, x) {
				out = append(out, l)
			}
		case typelts.Comm:
			if isVarNamed(l.Receiver, x) {
				out = append(out, l)
			}
		}
	}
	return out
}

// ExactOutputs returns the labels sending on exactly the variable x:
// outputs x⟨U′⟩ and communications τ[x,·:U′].
func (u *Uses) ExactOutputs(x string) []typelts.Label {
	var out []typelts.Label
	for _, l := range u.alphabet {
		switch l := l.(type) {
		case typelts.Output:
			if isVarNamed(l.Subject, x) {
				out = append(out, l)
			}
		case typelts.Comm:
			if isVarNamed(l.Sender, x) {
				out = append(out, l)
			}
		}
	}
	return out
}

// OutputsWithPayloadVar returns labels y⟨z⟩: sends on subject variable y
// carrying exactly the variable z, free or synchronised (used by
// Forwarding).
func (u *Uses) OutputsWithPayloadVar(y, z string) []typelts.Label {
	var out []typelts.Label
	for _, l := range u.alphabet {
		switch l := l.(type) {
		case typelts.Output:
			if isVarNamed(l.Subject, y) && isVarNamed(l.Payload, z) {
				out = append(out, l)
			}
		case typelts.Comm:
			if isVarNamed(l.Sender, y) && isVarNamed(l.Payload, z) {
				out = append(out, l)
			}
		}
	}
	return out
}

func isVarNamed(t types.Type, name string) bool {
	v, ok := t.(types.Var)
	return ok && v.Name == name
}

// PayloadVars returns the distinct variables z received in the given
// input-use labels (the z bound by "whenever some z is received…" in
// Fig. 7.4/7.6), in deterministic order.
func PayloadVars(inputs []typelts.Label) []string {
	seen := map[string]bool{}
	var out []string
	add := func(p types.Type) {
		if v, ok := p.(types.Var); ok && !seen[v.Name] {
			seen[v.Name] = true
			out = append(out, v.Name)
		}
	}
	for _, l := range inputs {
		switch l := l.(type) {
		case typelts.Input:
			add(l.Payload)
		case typelts.Comm:
			add(l.Payload)
		}
	}
	return out
}

// InputsCarrying filters input-use labels to those whose payload is
// exactly the variable z.
func InputsCarrying(inputs []typelts.Label, z string) []typelts.Label {
	var out []typelts.Label
	for _, l := range inputs {
		switch l := l.(type) {
		case typelts.Input:
			if isVarNamed(l.Payload, z) {
				out = append(out, l)
			}
		case typelts.Comm:
			if isVarNamed(l.Payload, z) {
				out = append(out, l)
			}
		}
	}
	return out
}
