// Package verify implements the paper's headline result: verification of
// safety and liveness properties of message-passing programs by model
// checking their types (Thm. 4.10 and Fig. 7).
//
// Given Γ ⊢ t : T, a property of t is established by (1) exploring the
// labelled transition system of T under the Y-limitation ↑Γ {x1..xn}
// (Def. 4.2, 4.9), (2) compiling the requested property schema from the
// right-hand column of Fig. 7 — using the input/output uses of Def. 4.8
// and the imprecise-synchronisation set Aτ — and (3) model checking the
// formula on the LTS. The paper delegated step (3) to mCRL2; here it is
// the native checker of package mucalc.
package verify

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"effpi/internal/lts"
	"effpi/internal/mucalc"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// Kind enumerates the property schemas of Fig. 7.
type Kind int

const (
	// NonUsage (Fig. 7.1): none of the probed channels is ever used for
	// output.
	NonUsage Kind = iota
	// DeadlockFree (Fig. 7.2): the process only pauses to interact on the
	// probed channels and never gets stuck (proper termination ✔ counts
	// as success, see DESIGN.md).
	DeadlockFree
	// EventualOutput (Fig. 7.3): some probed channel is eventually used
	// for output, with no imprecise synchronisation before.
	EventualOutput
	// Forwarding (Fig. 7.4): every z received from channel From is
	// eventually forwarded on channel To, before From is read again.
	Forwarding
	// Reactive (Fig. 7.5): the process runs forever and is always
	// eventually able to receive from channel From.
	Reactive
	// Responsive (Fig. 7.6): every channel z received from From is
	// eventually used to send a response, before From is read again.
	Responsive
)

var kindNames = map[Kind]string{
	NonUsage:       "non-usage",
	DeadlockFree:   "deadlock-free",
	EventualOutput: "ev-usage",
	Forwarding:     "forwarding",
	Reactive:       "reactive",
	Responsive:     "responsive",
}

func (k Kind) String() string { return kindNames[k] }

// AllKinds lists the six schemas in the column order of Fig. 9.
func AllKinds() []Kind {
	return []Kind{DeadlockFree, EventualOutput, Forwarding, NonUsage, Reactive, Responsive}
}

// Property is a property instance to verify.
type Property struct {
	Kind Kind
	// Channels are the probe channels x1..xn (NonUsage, DeadlockFree,
	// EventualOutput).
	Channels []string
	// From and To parameterise Forwarding (From → To); Reactive and
	// Responsive use From only.
	From, To string
	// Closed verifies the type as a closed composition: the Y-limitation
	// is ∅, so no free inputs/outputs fire and every action is an
	// internal synchronisation (whose labels record subjects and
	// payloads, so the Def. 4.8 use-sets still see them). This is the
	// right mode for self-contained systems such as the Fig. 9
	// benchmarks: free environment moves would otherwise let arbitrarily
	// unfair injections starve any liveness obligation. Open (partial)
	// processes leave Closed false, exposing the probe channels to the
	// environment as in Def. 4.9.
	Closed bool
}

// Observables returns the Y-limitation set implied by the property.
func (p Property) Observables() []string {
	switch p.Kind {
	case Forwarding:
		return []string{p.From, p.To}
	case Reactive, Responsive:
		return []string{p.From}
	default:
		return p.Channels
	}
}

func (p Property) String() string {
	switch p.Kind {
	case Forwarding:
		return fmt.Sprintf("forwarding(%s→%s)", p.From, p.To)
	case Reactive, Responsive:
		return fmt.Sprintf("%s(%s)", p.Kind, p.From)
	default:
		return fmt.Sprintf("%s(%s)", p.Kind, strings.Join(p.Channels, ","))
	}
}

// Request bundles a verification query: check that every process of type
// Type (in Env) satisfies Property.
type Request struct {
	Env      *types.Env
	Type     types.Type
	Property Property
	// MaxStates bounds LTS exploration (0 = lts.DefaultMaxStates).
	MaxStates int
	// Reuse, when non-nil, skips exploration and verifies on a previously
	// explored LTS (which must have been built with the same observables).
	Reuse *lts.LTS
	// Cache, when non-nil, supplies the shared transition cache (interner
	// + memoised raw steps) the exploration runs on. VerifyAll threads one
	// cache through all properties of a system so their explorations
	// share per-state work; it must have been built with
	// typelts.NewCache(Env, true).
	Cache *typelts.Cache
	// Parallelism is the worker count for LTS exploration
	// (lts.Options.Parallelism): 0 = GOMAXPROCS, 1 = serial. The verdict
	// and the explored LTS are identical at any value.
	Parallelism int
	// Reduction selects the Reduce stage of the pipeline (Explore →
	// Reduce → Check). ReduceStrong checks the property on the strong-
	// bisimulation quotient of the explored LTS (over the formula's
	// observation classes) instead of the concrete state space; verdicts
	// are identical, FAIL witnesses are lifted back to concrete runs and
	// re-validated by Replay before the outcome is returned, and the
	// outcome's ReducedStates records the block count actually checked.
	// EventualOutput (existential, checked by reachability, no formula)
	// always runs on the concrete LTS; so do formulas that simplify to ⊤
	// (the checker answers those without touching the model), and an
	// EarlyExit request that takes the on-the-fly path skips the stage
	// too (on-the-fly quotienting is future work; see ROADMAP).
	Reduction Reduction
	// Symmetry selects exploration-time symmetry reduction (see
	// SymmetryMode): with SymmetryOn, a closed property of a system with
	// detectable channel-bundle symmetry explores the orbit LTS — often
	// exponentially smaller — and every FAIL's witness is lifted back to
	// a concrete run and re-validated by Replay. Verdicts are identical
	// to SymmetryOff. Ignored when Reuse is set (the reused LTS carries
	// its own symmetry bookkeeping, which the FAIL lift honours).
	Symmetry SymmetryMode
	// PartialOrder selects exploration-time partial-order reduction (see
	// PartialOrderMode): with PartialOrderOn, an eligible property
	// (NonUsage, DeadlockFree, Reactive) explores only an ample subset of
	// each state's enabled transitions, computed from the independence
	// relation of the type semantics with the property's visible labels
	// excluded (lts.POR). Verdicts are identical to PartialOrderOff, and
	// every FAIL's witness — already a concrete run, since ample sets only
	// drop edges — is re-validated by Replay before the outcome returns.
	// Ignored when Reuse is set (the reused LTS is already explored), for
	// the non-eligible schemas, and when symmetry reduction claims the
	// exploration: symmetry wins, because the orbit construction must see
	// every concrete successor (the two exploration-time reductions do
	// not stack; see DESIGN.md §por).
	PartialOrder PartialOrderMode
	// symPinned extends the pinned channel set of symmetry detection
	// beyond the property's own channels. VerifyAll sets it to the batch
	// union so one orbit exploration is sound for every property sharing
	// it.
	symPinned []string
	// joint, when non-nil, is the shared cross-property joint quotient of
	// the reused LTS (see buildJoint); a ReduceStrong check then refines
	// the joint quotient instead of the full LTS.
	joint *jointQuotient
	// EarlyExit selects on-the-fly checking: the property's formula is
	// compiled symbolically (alphabet-independent action-set predicates),
	// and the nested DFS drives an lts.Incremental that materialises
	// states only as the search reaches them — so a violation found early
	// leaves the rest of the state space unexplored, and the outcome's
	// States counts only what was discovered. Verdicts are identical to
	// the full pipeline's. Honored for the schemas whose formula structure
	// does not depend on the explored alphabet (NonUsage, DeadlockFree,
	// Reactive); the others — Forwarding, Responsive (shaped by the
	// payload variables found in the alphabet) and EventualOutput (not
	// LTL) — silently run the full pipeline, as does a Reuse request.
	// On-the-fly exploration is serial; Parallelism is ignored. The
	// outcome's LTS is the explored fragment (lts.LTS.Partial).
	EarlyExit bool
	// Progress, when non-nil, receives periodic exploration snapshots
	// (lts.Options.Progress).
	Progress func(lts.Progress)
}

// Outcome is a verification result.
type Outcome struct {
	Property Property
	// Holds is the verdict: by Thm. 4.10, when it is true, every
	// productive process of the given type satisfies the corresponding
	// left-column property of Fig. 7 at run time.
	Holds bool
	// Formula is the compiled right-column formula.
	Formula mucalc.Formula
	// States is the size of the (Y-limited, run-completed) type LTS: the
	// number of concrete states the verdict covers. Under symmetry
	// reduction it is the sum of orbit sizes (saturating at MaxInt64 —
	// then reported as the int cap), so it equals what a concrete
	// exploration would have visited; StatesExplored is what was actually
	// explored.
	States int
	// StatesExplored is the number of states the exploration materialised
	// — orbit representatives under symmetry reduction, otherwise equal
	// to States. The symmetry win is States / StatesExplored.
	StatesExplored int
	// ReducedStates is the number of quotient blocks the checker actually
	// ran on when a Reduce stage was applied (0 = no reduction stage; the
	// reduction ratio is States / ReducedStates).
	ReducedStates int
	// ProductStates and AutomatonStates report model-checker effort.
	ProductStates   int
	AutomatonStates int
	// Duration is the wall-clock verification time (exploration+check).
	Duration time.Duration
	// Counterexample is a violating run when Holds is false.
	Counterexample *mucalc.Trace
	// Witness, when Holds is false, is the decoded state-level lasso
	// behind Counterexample: every visited LTS state with its component
	// multiset, machine-replayable via Replay. EventualOutput failures
	// carry no witness (the schema is existential; see Replay).
	Witness *Witness
	// LTS is the explored state space (reusable across properties). Under
	// EarlyExit it is the explored fragment (lts.LTS.Partial) and must not
	// be reused.
	LTS *lts.LTS
	// WitnessLTS, when the outcome is a symmetric FAIL, is the concrete
	// fragment the lifted witness runs over (the orbit LTS's states and
	// labels are canonical representatives, so the witness cannot
	// validate against LTS). Replay validates against it when set; the
	// outcome's Formula is then the property recompiled over its
	// alphabet.
	WitnessLTS *lts.LTS
	// EarlyExit reports that the on-the-fly engine produced this outcome:
	// States counts discovered states only, and Expanded of them were
	// materialised before the search concluded.
	EarlyExit bool
	Expanded  int
	// PartialOrder reports that the exploration ran under partial-order
	// reduction: States and StatesExplored count the ample-reduced state
	// space — a subset of the full one, whose size is never computed —
	// and a FAIL witness is a concrete run of that subset, validated by
	// Replay. False when the request's PartialOrderOn silently disengaged
	// (non-eligible schema, Reuse, or symmetry reduction taking
	// precedence).
	PartialOrder bool
}

// Verify runs the full pipeline for one property.
func Verify(req Request) (*Outcome, error) {
	return VerifyContext(context.Background(), req)
}

// VerifyContext is Verify with cancellation: ctx is plumbed into the LTS
// exploration (lts.ExploreContext / lts.NewIncrementalContext) and the
// model-checking passes (mucalc.CheckModelContext), so the request
// returns promptly — with an error wrapping ctx.Err() — once the context
// is cancelled or past its deadline. A cancelled request leaves any
// shared typelts.Cache fully usable: the cache is an append-only memo of
// schedule-independent entries, so a later identical request produces
// byte-identical verdicts and witnesses.
func VerifyContext(ctx context.Context, req Request) (*Outcome, error) {
	start := time.Now()

	if err := Admissible(req.Env, req.Type); err != nil {
		return nil, err
	}

	obsList, err := ObservablesFor(req.Env, req.Property)
	if err != nil {
		return nil, err
	}
	obs := map[string]bool{}
	for _, x := range obsList {
		obs[x] = true
	}
	sem := &typelts.Semantics{Env: req.Env, Observable: obs, WitnessOnly: true, Cache: req.Cache}

	// Symmetry detection must run over the exploration's own interner:
	// pin a compatible cache on the semantics first, so prepBuilder does
	// not clone a private one behind the group's back.
	var sym *lts.Symmetry
	if req.Symmetry == SymmetryOn && len(obs) == 0 && req.Reuse == nil {
		if !sem.HasCompatibleCache() {
			sem.Cache = typelts.NewCache(req.Env, true)
		}
		sym = lts.DetectSymmetry(sem.Cache, req.Type, append(pinnedChannels(req.Property), req.symPinned...))
	}

	// Partial-order reduction engages only when the exploration is ours to
	// reduce (no Reuse) and symmetry has not claimed it: the orbit
	// construction canonicalises over every concrete successor, so a
	// detected group wins and POR silently disengages.
	var por *lts.POR
	if req.PartialOrder == PartialOrderOn && req.Reuse == nil && sym == nil && porEligible(req.Property.Kind) {
		por = porFilter(req.Env, req.Property)
	}

	if req.EarlyExit && req.Reuse == nil {
		if phi, conjuncts, ok := compileSymbolic(req.Env, req.Property); ok {
			return verifyOnTheFly(ctx, req, sem, sym, por, phi, conjuncts, start)
		}
	}

	m := req.Reuse
	if m == nil {
		var err error
		m, err = lts.ExploreContext(ctx, sem, req.Type, lts.Options{MaxStates: req.MaxStates, Parallelism: req.Parallelism, Progress: req.Progress, Symmetry: sym, PartialOrder: por})
		if err != nil {
			return nil, err
		}
	}

	out := &Outcome{
		Property:       req.Property,
		States:         int(m.Covered()),
		StatesExplored: m.Len(),
		LTS:            m,
		PartialOrder:   por != nil,
	}

	if req.Property.Kind == EventualOutput {
		// Fig. 7(3), existential reachability (see EvUsageHolds).
		u := NewUses(req.Env, m)
		out.Holds = EvUsageHolds(u, m, req.Property.Channels)
		out.Duration = time.Since(start)
		return out, nil
	}

	phi, err := Compile(req.Env, m, req.Property)
	if err != nil {
		return nil, err
	}
	var res mucalc.Result
	if req.Reduction == ReduceStrong {
		if req.joint != nil {
			res, err = checkReducedJoint(ctx, m, req.joint, phi, out)
		} else {
			res, err = checkReduced(ctx, m, phi, out)
		}
	} else {
		res, err = mucalc.CheckContext(ctx, m, phi)
	}
	if err != nil {
		return nil, err
	}
	out.Holds = res.Holds
	out.Formula = phi
	out.ProductStates = res.ProductStates
	out.AutomatonStates = res.AutomatonStates
	out.Counterexample = res.Counterexample
	out.Witness = DecodeWitness(m, res.Witness)
	out.Duration = time.Since(start)
	if !out.Holds {
		symmetric := m.Sym != nil && out.Witness != nil
		if symmetric {
			// The witness runs over orbit representatives; rewrite it as
			// a concrete run before validation.
			if err := liftSymmetric(ctx, req, sem, m, out); err != nil {
				return nil, fmt.Errorf("verify: symmetry produced an invalid counterexample lift: %w", err)
			}
		}
		if req.Reduction == ReduceStrong || symmetric || out.PartialOrder {
			// The witness was found on a reduced space — a quotient
			// (blocks, orbits or both, lifted above) or an ample-reduced
			// edge-subset (already a concrete run, no lift needed) — so
			// the FAIL is only reported once the existing replay oracle
			// confirms a genuine concrete violation.
			if err := Replay(out); err != nil {
				return nil, fmt.Errorf("verify: reduction produced an invalid counterexample lift: %w", err)
			}
		}
	}
	return out, nil
}

// verifyOnTheFly runs the early-exit pipeline: the nested DFS of
// mucalc.CheckModel drives an incremental exploration, materialising
// states only as the search reaches them. The formula's top-level
// conjuncts are checked one at a time over the shared exploration,
// short-circuiting on the first violation — a run violating one conjunct
// violates the conjunction, so the remaining conjuncts (whose PASS proofs
// would force exhaustive exploration) are never started. Verdicts equal
// the full pipeline's: the symbolic sets agree with the enumerated ones
// on every label, and conjunction short-circuiting preserves T |= ϕ1∧ϕ2.
func verifyOnTheFly(ctx context.Context, req Request, sem *typelts.Semantics, sym *lts.Symmetry, por *lts.POR, phi mucalc.Formula, conjuncts []mucalc.Formula, start time.Time) (*Outcome, error) {
	inc := lts.NewIncrementalContext(ctx, sem, req.Type, lts.Options{MaxStates: req.MaxStates, Progress: req.Progress, Symmetry: sym, PartialOrder: por})
	out := &Outcome{
		Property:     req.Property,
		Holds:        true,
		Formula:      phi,
		EarlyExit:    true,
		PartialOrder: por != nil,
	}
	var failed mucalc.Result
	for _, c := range conjuncts {
		res, err := mucalc.CheckModelContext(ctx, inc, c)
		if err != nil {
			return nil, err
		}
		out.ProductStates += res.ProductStates
		out.AutomatonStates += res.AutomatonStates
		if !res.Holds {
			out.Holds = false
			failed = res
			break
		}
	}
	m := inc.Snapshot()
	out.States = int(m.Covered())
	out.StatesExplored = m.Len()
	out.LTS = m
	out.Expanded = inc.Expanded()
	if !out.Holds {
		out.Counterexample = failed.Counterexample
		out.Witness = DecodeWitness(m, failed.Witness)
		if m.Sym != nil && out.Witness != nil {
			// Symbolic formulas read labels directly, so the lift needs no
			// recompilation — but the witness must still become a concrete
			// run, validated by the replay oracle like every other
			// symmetric FAIL.
			if err := liftSymmetric(ctx, req, sem, m, out); err != nil {
				return nil, fmt.Errorf("verify: symmetry produced an invalid counterexample lift: %w", err)
			}
			if err := Replay(out); err != nil {
				return nil, fmt.Errorf("verify: reduction produced an invalid counterexample lift: %w", err)
			}
		} else if out.PartialOrder {
			// The ample-reduced fragment is an edge-subset of the full
			// space, so the witness is already a concrete run; validate it
			// directly before reporting the FAIL.
			if err := Replay(out); err != nil {
				return nil, fmt.Errorf("verify: partial-order reduction produced an invalid counterexample: %w", err)
			}
		}
	}
	out.Duration = time.Since(start)
	return out, nil
}

// VerifyAll verifies all six Fig. 9 properties of a system, reusing the
// explored LTS across properties that share the same observable *set*
// (the key is order-insensitive: observables are sorted before joining),
// and sharing one transition cache — interner, memoised per-state steps,
// synchronisation matches — across every exploration, so properties with
// different Y-limitations still reuse each other's per-state work.
//
// VerifyAll runs at the default parallelism (GOMAXPROCS); see
// VerifyAllWith for the knob and the concurrency structure.
func VerifyAll(env *types.Env, t types.Type, props []Property, maxStates int) ([]*Outcome, error) {
	return VerifyAllWith(env, t, props, AllOptions{MaxStates: maxStates})
}

// AllOptions configures VerifyAllWith.
type AllOptions struct {
	// MaxStates bounds each LTS exploration (0 = lts.DefaultMaxStates).
	MaxStates int
	// Reduction selects the Reduce stage for every property of the batch
	// (see Request.Reduction). Under VerifyAll the refinement runs once
	// per observable-set group, over the join of every property's
	// observation classes, and each property then minimises the shared
	// joint quotient (see buildJoint) — same verdicts, block counts and
	// witnesses, less repeated work.
	Reduction Reduction
	// Symmetry selects exploration-time symmetry reduction for every
	// property of the batch (see Request.Symmetry). The orbit exploration
	// is shared per group, pinning the union of every property's
	// channels, so one exploration is sound for all of them.
	Symmetry SymmetryMode
	// PartialOrder selects exploration-time partial-order reduction for
	// every property of the batch (see Request.PartialOrder). Because the
	// visible-label set is per property, an eligible property cannot
	// reuse the group exploration: it explores its own ample-reduced LTS
	// over the shared transition cache, and group explorations only run
	// for the properties that still need the full space. When symmetry
	// reduction is also on and a group is detected for the closed
	// properties, symmetry wins and those properties fall back to the
	// shared orbit exploration (same precedence as Request.PartialOrder).
	PartialOrder PartialOrderMode
	// Cache, when non-nil, is the shared transition cache every
	// exploration runs on, letting a long-lived owner (the public
	// package's Workspace) reuse per-component work across whole
	// requests. It must have been built with typelts.NewCache(env, true)
	// for the same env passed to VerifyAllContext. Nil means a fresh
	// per-call cache, the previous behaviour.
	Cache *typelts.Cache
	// Progress, when non-nil, receives periodic exploration snapshots
	// from every group exploration (lts.Options.Progress). Under the
	// concurrent pipeline callbacks arrive from multiple goroutines; the
	// callee must be safe for that.
	Progress func(lts.Progress)
	// Parallelism selects the engine and sizes each exploration's worker
	// pool: 0 = GOMAXPROCS, 1 = the fully serial engine (explorations
	// and property checks run one after another — the reference
	// behaviour). Values ≥ 2 enable the concurrent pipeline, in which
	// every observable-set group explores on its own goroutine (with
	// Parallelism BFS workers each) and every property checks on its
	// own goroutine — so the *goroutine* count scales with the group
	// and property counts too; actual CPU use stays bounded by
	// GOMAXPROCS, which is the knob for capping machine load. At any
	// value the verdicts, state counts and explored LTSes are
	// identical; only wall-clock changes.
	Parallelism int
}

// VerifyAllWith is VerifyAll with explicit parallelism. With Parallelism
// ≠ 1 the pipeline is concurrent on three levels: property groups
// (distinct observable sets) explore their LTSes on parallel goroutines
// over one shared transition cache; each exploration is itself a
// parallel BFS (lts.Options.Parallelism); and the model-checking stages
// (mucalc.Check / EvUsageHolds) of independent properties run on their
// own goroutines over the shared read-only LTSes. Outcomes are collected
// in input order, and the error contract matches the serial engine:
// outcomes up to the first failing property, plus that property's error.
func VerifyAllWith(env *types.Env, t types.Type, props []Property, opts AllOptions) ([]*Outcome, error) {
	return VerifyAllContext(context.Background(), env, t, props, opts)
}

// VerifyAllContext is VerifyAllWith with cancellation: ctx reaches every
// group exploration and every model-checking stage, so the whole batch
// unwinds promptly — with an error wrapping ctx.Err() — once the context
// is done. The error contract is unchanged (outcomes up to the first
// failing property, plus that property's error); under the concurrent
// pipeline a cancelled context typically surfaces on the earliest
// still-running property.
func VerifyAllContext(ctx context.Context, env *types.Env, t types.Type, props []Property, opts AllOptions) ([]*Outcome, error) {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par == 1 {
		return verifyAllSerial(ctx, env, t, props, opts)
	}

	outcomes := make([]*Outcome, 0, len(props))
	if len(props) == 0 {
		return outcomes, nil
	}
	// Fail fast (and once) on inadmissible types instead of racing every
	// exploration into the same error; the serial engine reports this
	// against the first property.
	if err := Admissible(env, t); err != nil {
		return outcomes, fmt.Errorf("%s: %w", props[0], err)
	}

	// Group properties by observable set. ObservablesFor errors are
	// deferred per property so the input-order error contract holds.
	keys := make([]string, len(props))
	obsSets := make([]map[string]bool, len(props))
	propErrs := make([]error, len(props))
	for i, p := range props {
		obs, err := ObservablesFor(env, p)
		if err != nil {
			propErrs[i] = err
			continue
		}
		sorted := append([]string{}, obs...)
		sort.Strings(sorted)
		keys[i] = strings.Join(sorted, ",")
		set := make(map[string]bool, len(obs))
		for _, x := range obs {
			set[x] = true
		}
		obsSets[i] = set
	}

	// One exploration per distinct observable set, all concurrent, all
	// sharing the transition cache (so groups still reuse each other's
	// per-component work even though their Y-limitations differ). The
	// group goroutine also prepares the shared per-group artifacts the
	// property checks consume: the symmetry group (closed groups only —
	// at most one group qualifies, so the single-exploration discipline
	// of lts.Symmetry holds) and the joint quotient.
	shared := opts.Cache
	if shared == nil {
		shared = typelts.NewCache(env, true)
	}
	batchPinned := batchPinnedChannels(props)
	porProp := porProps(shared, t, props, obsSets, propErrs, opts)
	// Properties taking the partial-order path explore their own reduced
	// LTS inside VerifyContext, so they neither join nor force a group
	// exploration (and the joint quotient is built without them).
	groupProps := map[string][]Property{}
	for i, p := range props {
		if propErrs[i] == nil && !porProp[i] {
			groupProps[keys[i]] = append(groupProps[keys[i]], p)
		}
	}
	type exploration struct {
		done  chan struct{}
		lts   *lts.LTS
		joint *jointQuotient
		err   error
	}
	groups := map[string]*exploration{}
	for i := range props {
		if propErrs[i] != nil || porProp[i] {
			continue
		}
		if _, ok := groups[keys[i]]; ok {
			continue
		}
		g := &exploration{done: make(chan struct{})}
		groups[keys[i]] = g
		go func(obs map[string]bool, key string, g *exploration) {
			defer close(g.done)
			sem := &typelts.Semantics{Env: env, Observable: obs, WitnessOnly: true, Cache: shared}
			var sym *lts.Symmetry
			if opts.Symmetry == SymmetryOn && len(obs) == 0 {
				sym = lts.DetectSymmetry(shared, t, batchPinned)
			}
			g.lts, g.err = lts.ExploreContext(ctx, sem, t, lts.Options{MaxStates: opts.MaxStates, Parallelism: par, Progress: opts.Progress, Symmetry: sym})
			if g.err == nil && opts.Reduction == ReduceStrong {
				g.joint = buildJoint(ctx, env, g.lts, groupProps[key])
			}
		}(obsSets[i], keys[i], g)
	}

	// Property checks: one goroutine each, blocking on its group's LTS.
	// Each outcome's Duration is the property's wall-clock time including
	// the (shared, overlapping) exploration wait.
	results := make([]*Outcome, len(props))
	done := make(chan struct{})
	var pending int
	for i := range props {
		if propErrs[i] != nil {
			continue
		}
		pending++
		go func(i int) {
			defer func() { done <- struct{}{} }()
			start := time.Now()
			var reuse *lts.LTS
			var joint *jointQuotient
			porMode := PartialOrderOff
			if porProp[i] {
				// Per-property ample exploration (shared cache, no group
				// LTS): the reduced space depends on the property's own
				// visible-label set.
				porMode = PartialOrderOn
			} else {
				g := groups[keys[i]]
				<-g.done
				if g.err != nil {
					propErrs[i] = g.err
					return
				}
				reuse, joint = g.lts, g.joint
			}
			o, err := VerifyContext(ctx, Request{
				Env: env, Type: t, Property: props[i],
				MaxStates: opts.MaxStates, Reuse: reuse, Cache: shared, Parallelism: par,
				Reduction: opts.Reduction, Symmetry: opts.Symmetry, PartialOrder: porMode,
				symPinned: batchPinned, joint: joint,
			})
			if err != nil {
				propErrs[i] = err
				return
			}
			o.Duration = time.Since(start)
			results[i] = o
		}(i)
	}
	for ; pending > 0; pending-- {
		<-done
	}

	for i, p := range props {
		if propErrs[i] != nil {
			return outcomes, fmt.Errorf("%s: %w", p, propErrs[i])
		}
		outcomes = append(outcomes, results[i])
	}
	return outcomes, nil
}

// verifyAllSerial is the reference single-threaded pipeline (and the
// baseline the parallel engine is measured against): one property after
// another, LTS reuse by observable-set key, one shared cache. Group
// explorations run at the first property of each key — with the same
// shared symmetry group and joint quotient the concurrent pipeline
// prepares — so outcomes (verdicts, state counts, witnesses) are
// byte-identical at any AllOptions.Parallelism.
func verifyAllSerial(ctx context.Context, env *types.Env, t types.Type, props []Property, opts AllOptions) ([]*Outcome, error) {
	outcomes := make([]*Outcome, 0, len(props))
	shared := opts.Cache
	if shared == nil {
		shared = typelts.NewCache(env, true)
	}
	batchPinned := batchPinnedChannels(props)

	// First pass: group the properties by observable set, deferring
	// ObservablesFor errors so the input-order error contract holds.
	keys := make([]string, len(props))
	obsSets := make([]map[string]bool, len(props))
	propErrs := make([]error, len(props))
	for i, p := range props {
		obs, err := ObservablesFor(env, p)
		if err != nil {
			propErrs[i] = err
			continue
		}
		sorted := append([]string{}, obs...)
		sort.Strings(sorted)
		keys[i] = strings.Join(sorted, ",")
		set := make(map[string]bool, len(obs))
		for _, x := range obs {
			set[x] = true
		}
		obsSets[i] = set
	}
	porProp := porProps(shared, t, props, obsSets, propErrs, opts)
	groupProps := map[string][]Property{}
	for i, p := range props {
		if propErrs[i] == nil && !porProp[i] {
			groupProps[keys[i]] = append(groupProps[keys[i]], p)
		}
	}

	ltsCache := map[string]*lts.LTS{}
	joints := map[string]*jointQuotient{}
	for i, p := range props {
		if propErrs[i] != nil {
			return outcomes, fmt.Errorf("%s: %w", p, propErrs[i])
		}
		if porProp[i] {
			// Per-property ample exploration, mirroring the concurrent
			// pipeline's partial-order branch (shared cache, no group LTS,
			// no joint quotient).
			o, err := VerifyContext(ctx, Request{
				Env: env, Type: t, Property: p, MaxStates: opts.MaxStates,
				Cache: shared, Parallelism: 1, Progress: opts.Progress,
				Reduction: opts.Reduction, Symmetry: opts.Symmetry,
				PartialOrder: PartialOrderOn, symPinned: batchPinned,
			})
			if err != nil {
				return outcomes, fmt.Errorf("%s: %w", p, err)
			}
			outcomes = append(outcomes, o)
			continue
		}
		key := keys[i]
		if _, ok := ltsCache[key]; !ok {
			if err := Admissible(env, t); err != nil {
				return outcomes, fmt.Errorf("%s: %w", p, err)
			}
			sem := &typelts.Semantics{Env: env, Observable: obsSets[i], WitnessOnly: true, Cache: shared}
			var sym *lts.Symmetry
			if opts.Symmetry == SymmetryOn && len(obsSets[i]) == 0 {
				sym = lts.DetectSymmetry(shared, t, batchPinned)
			}
			m, err := lts.ExploreContext(ctx, sem, t, lts.Options{MaxStates: opts.MaxStates, Parallelism: 1, Progress: opts.Progress, Symmetry: sym})
			if err != nil {
				return outcomes, fmt.Errorf("%s: %w", p, err)
			}
			ltsCache[key] = m
			if opts.Reduction == ReduceStrong {
				joints[key] = buildJoint(ctx, env, m, groupProps[key])
			}
		}
		req := Request{
			Env: env, Type: t, Property: p, MaxStates: opts.MaxStates,
			Reuse: ltsCache[key], Cache: shared, Parallelism: 1,
			Progress: opts.Progress, Reduction: opts.Reduction,
			Symmetry: opts.Symmetry, symPinned: batchPinned, joint: joints[key],
		}
		o, err := VerifyContext(ctx, req)
		if err != nil {
			return outcomes, fmt.Errorf("%s: %w", p, err)
		}
		outcomes = append(outcomes, o)
	}
	return outcomes, nil
}

// ObservablesFor computes the Y-limitation set for a property: the
// property's probe channels, plus — for Responsive — the environment
// witnesses of channels receivable on From (Thm. 4.10's footnote assumes
// such witnesses exist in Γ; their outputs carry the response obligation
// {z⟨U′⟩}, so they must remain observable).
func ObservablesFor(env *types.Env, p Property) ([]string, error) {
	base := p.Observables()
	for _, x := range base {
		if !env.Has(x) {
			return nil, fmt.Errorf("verify: probe channel %s is not in the environment", x)
		}
	}
	if p.Closed {
		return nil, nil
	}
	if p.Kind != Responsive {
		return base, nil
	}
	out := append([]string{}, base...)
	seen := map[string]bool{}
	for _, x := range base {
		seen[x] = true
	}
	cap, ok := types.ResolveChan(env, types.Var{Name: p.From})
	if !ok || !cap.In {
		return out, nil
	}
	for _, w := range env.Names() {
		if seen[w] {
			continue
		}
		if types.Subtype(env, types.Var{Name: w}, cap.Payload) {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out, nil
}

// Admissible checks the preconditions of Thm. 4.10 and Lemma 4.7: the
// type must be a well-formed π-type, must not contain proc, must be
// guarded, and must have finite control (no p[...] under µ).
func Admissible(env *types.Env, t types.Type) error {
	if err := types.CheckProcType(env, t); err != nil {
		return fmt.Errorf("verify: not a π-type: %w", err)
	}
	if containsProc(t) {
		return fmt.Errorf("verify: type contains proc, which Thm. 4.10 excludes (proc hides behaviour)")
	}
	if err := types.CheckGuarded(t); err != nil {
		return fmt.Errorf("verify: %w (Lemma 4.7 requires guarded types)", err)
	}
	if err := types.CheckFiniteControl(t); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	return nil
}

func containsProc(t types.Type) bool {
	switch t := t.(type) {
	case types.Proc:
		return true
	case types.Union:
		return containsProc(t.L) || containsProc(t.R)
	case types.Pi:
		return containsProc(t.Dom) || containsProc(t.Cod)
	case types.Rec:
		return containsProc(t.Body)
	case types.ChanIO:
		return containsProc(t.Elem)
	case types.ChanI:
		return containsProc(t.Elem)
	case types.ChanO:
		return containsProc(t.Elem)
	case types.Out:
		return containsProc(t.Ch) || containsProc(t.Payload) || containsProc(t.Cont)
	case types.In:
		return containsProc(t.Ch) || containsProc(t.Cont)
	case types.Par:
		return containsProc(t.L) || containsProc(t.R)
	default:
		return false
	}
}
