package verify

// Exploration-time symmetry reduction (Request.Symmetry): the verifier
// detects the channel permutation group of a closed system — the direct
// product of symmetric groups over interchangeable-bundle classes and
// cyclic rotation groups over ring bundles (lts.DetectSymmetry, pinning
// every channel the property observes) — explores the orbit LTS instead
// of the concrete one, and — on FAIL — lifts the orbit counterexample
// back to a concrete run by composing the permutations recorded on the
// orbit edges, re-validating the result with the PR 3 replay oracle. A
// lift that fails to produce a violating concrete run is an internal
// error, never a verdict. The lift is group-agnostic: it only ever
// composes, inverts and applies recorded permutations, so cyclic
// factors ride through the identical ρ-composition walk as bundle
// swaps.
//
// Soundness of the orbit check: the group G is an automorphism group of
// the concrete LTS (every π ∈ G maps reachable states to reachable
// states and edges to edges with π-renamed labels), and G fixes every
// channel the property mentions, so the property — read as the
// conjunction over its whole G-closed payload alphabet — is G-invariant.
// Checking a G-invariant linear-time property on the orbit quotient is
// then equivalent to checking it on the concrete system (the classical
// symmetry-reduction argument of Emerson–Sistla). The lift below turns
// that equivalence into machine-checked evidence for every FAIL.
//
// Cross-property quotient reuse (jointQuotient): VerifyAll refines the
// group's LTS once, over the product of every property's observation-
// class vector, and each property then minimises the (small) joint
// quotient instead of the full LTS. Quotient-of-quotient by coarser
// classes equals the direct quotient, so verdicts, block counts and
// witnesses are unchanged — only the per-property refinement cost drops
// from O(concrete edges) to O(joint edges).

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"effpi/internal/lts"
	"effpi/internal/mucalc"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// SymmetryMode selects exploration-time symmetry reduction.
type SymmetryMode int

const (
	// SymmetryOff explores the concrete state space (the reference
	// pipeline).
	SymmetryOff SymmetryMode = iota
	// SymmetryOn canonicalises every explored state to its orbit
	// representative under the system's channel permutation group —
	// interchangeable-bundle classes and ring rotations
	// (lts.DetectSymmetry) — pinning the property's channels. Verdicts are
	// identical to SymmetryOff; every FAIL's witness is lifted to a
	// concrete run and re-validated by Replay. The mode only engages for
	// closed properties of systems with detectable symmetry — otherwise
	// the exploration silently runs concrete, byte-identical to
	// SymmetryOff.
	SymmetryOn
)

var symmetryNames = map[SymmetryMode]string{
	SymmetryOff: "off",
	SymmetryOn:  "on",
}

func (s SymmetryMode) String() string {
	if n, ok := symmetryNames[s]; ok {
		return n
	}
	return fmt.Sprintf("SymmetryMode(%d)", int(s))
}

// ParseSymmetry resolves a symmetry mode name ("off", "on") as used by
// CLI flags and service request fields. Unknown names report the valid
// values.
func ParseSymmetry(name string) (SymmetryMode, error) {
	for s, n := range symmetryNames {
		if n == name {
			return s, nil
		}
	}
	return SymmetryOff, fmt.Errorf("verify: unknown symmetry mode %q (valid values: %s)", name, validModeNames(symmetryNames))
}

// validModeNames renders a mode-name map as a sorted, comma-separated
// list for error messages (shared by ParseSymmetry and ParseReduction).
func validModeNames[M comparable](m map[M]string) string {
	names := make([]string, 0, len(m))
	for _, n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// pinnedChannels lists the channels a property observes — probe
// channels, From and To — which symmetry detection must never permute.
func pinnedChannels(p Property) []string {
	var out []string
	seen := map[string]bool{}
	add := func(x string) {
		if x != "" && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, c := range p.Channels {
		add(c)
	}
	add(p.From)
	add(p.To)
	return out
}

// batchPinnedChannels is the union of pinnedChannels over a property
// batch: VerifyAll shares one orbit exploration across every property of
// an observable-set group, so the group must fix every channel any of
// them observes.
func batchPinnedChannels(props []Property) []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range props {
		for _, c := range pinnedChannels(p) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// internMultiset interns a component multiset's identity: ID-sorted
// InternPar over a scratch copy (InternPar sorts in place, and callers'
// slices are rank-sorted and must stay that way).
func internMultiset(in *types.Interner, comps []types.ID) types.ID {
	scratch := append(make([]types.ID, 0, len(comps)), comps...)
	return in.InternPar(scratch)
}

// orbitStep is one resolved transition of an orbit-LTS lasso: the edge
// plus the canonicalisation permutation recorded for it.
type orbitStep struct {
	from, to int
	lab      int32
	perm     int32
}

// resolveOrbitSteps maps a witness segment onto orbit edges. Edge dedup
// keeps one edge per (label, destination) pair, so the lookup is
// unambiguous; the permutation found maps the canonical destination back
// to *a* raw successor of the source, which is all the lift needs.
func resolveOrbitSteps(m *lts.LTS, states []int, labels []int32) ([]orbitStep, error) {
	steps := make([]orbitStep, 0, len(labels))
	for i, lab := range labels {
		from, to := states[i], states[i+1]
		found := false
		for k, e := range m.Out(from) {
			if e.Label == lab && int(e.Dst) == to {
				steps = append(steps, orbitStep{from: from, to: to, lab: lab, perm: m.EdgePerm(from, k)})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("witness step %d→%d (label %d) is not an edge of the orbit LTS", from, to, lab)
		}
	}
	return steps, nil
}

// liftSymmetric rewrites a FAIL outcome found on an orbit LTS into
// concrete terms: a concrete lasso, the concrete fragment it runs over
// (Outcome.WitnessLTS), and — for enumerated-alphabet formulas — the
// property recompiled over that fragment, so Replay can re-validate the
// verdict on concrete semantics.
//
// The lift walks a fresh symmetry-free incremental exploration of the
// same type over the same interner, tracking the accumulated permutation
// ρ that maps the current orbit representative onto the current concrete
// state: ρ₀ inverts the root canonicalisation, each orbit edge with
// recorded permutation π contributes the concrete label ρ(label) and
// updates ρ ← ρ∘π⁻¹. The orbit cycle is unrolled until the concrete walk
// revisits a cycle-head state, which the permutation algebra bounds by
// the order of the cycle's composed permutation δ (ρ at the k-th head is
// ρ₀∘δᵏ, and δ has finite order).
func liftSymmetric(ctx context.Context, req Request, sem *typelts.Semantics, m *lts.LTS, out *Outcome) error {
	sym := m.Sym.S
	raw := out.Witness.Raw
	if !sem.HasCompatibleCache() || !sym.SameInterner(sem.Cache.Interner()) {
		return fmt.Errorf("the outcome's symmetry group was detected over a different transition cache")
	}
	in := sem.Cache.Interner()

	stem, err := resolveOrbitSteps(m, raw.StemStates, raw.StemLabels)
	if err != nil {
		return err
	}
	cyc, err := resolveOrbitSteps(m, raw.CycleStates, raw.CycleLabels)
	if err != nil {
		return err
	}
	if len(cyc) == 0 {
		return fmt.Errorf("orbit witness has an empty cycle")
	}

	inc := lts.NewIncrementalContext(ctx, sem, req.Type, lts.Options{MaxStates: req.MaxStates})
	rho := sym.Invert(m.Sym.RootPerm)
	cur := inc.Initial()
	lifted := &mucalc.Witness{StemStates: []int{cur}}

	// step advances the concrete walk along one orbit step: the concrete
	// label is ρ(label), the expected concrete successor is
	// (ρ∘π⁻¹)(canonical destination), matched among the concrete edges by
	// label key and interned multiset identity.
	step := func(st orbitStep) error {
		next := sym.Compose(rho, sym.Invert(st.perm))
		lab := sym.PermuteLabel(rho, m.Labels[st.lab])
		dstComps := sem.InternLeaves(m.States[st.to])
		expComps, ok := sym.PermuteComps(next, dstComps)
		if !ok {
			return fmt.Errorf("orbit state %d has components the group cannot place", st.to)
		}
		want := internMultiset(in, expComps)
		wantKey := lab.Key()
		edges, err := inc.Succ(cur)
		if err != nil {
			return err
		}
		for _, e := range edges {
			if inc.Labels()[e.Label].Key() == wantKey && internMultiset(in, inc.StateComps(int(e.Dst))) == want {
				lifted.StemLabels = append(lifted.StemLabels, e.Label)
				cur = int(e.Dst)
				lifted.StemStates = append(lifted.StemStates, cur)
				rho = next
				return nil
			}
		}
		return fmt.Errorf("concrete state %d has no successor matching lifted label %s", cur, wantKey)
	}

	for _, st := range stem {
		if err := step(st); err != nil {
			return err
		}
	}

	// δ is the permutation one cycle unrolling composes onto ρ; its order
	// bounds the number of unrollings before a concrete head repeats.
	delta := int32(0)
	for _, st := range cyc {
		delta = sym.Compose(delta, sym.Invert(st.perm))
	}
	ord := 1
	for d := delta; d != 0; d = sym.Compose(d, delta) {
		ord++
		if ord > 1<<20 {
			return fmt.Errorf("cycle permutation order exceeds 2^20 — group bookkeeping is inconsistent")
		}
	}

	firstSeen := map[int]int{}
	for iter := 0; iter <= ord; iter++ {
		if at, ok := firstSeen[cur]; ok {
			cut := len(stem) + at*len(cyc)
			w := &mucalc.Witness{
				StemStates:  lifted.StemStates[:cut+1],
				StemLabels:  lifted.StemLabels[:cut],
				CycleStates: lifted.StemStates[cut:],
				CycleLabels: lifted.StemLabels[cut:],
			}
			return finishLift(req, inc, w, out)
		}
		firstSeen[cur] = iter
		for _, st := range cyc {
			if err := step(st); err != nil {
				return err
			}
		}
	}
	return fmt.Errorf("concrete cycle did not close within %d unrollings (order of δ) — group bookkeeping is inconsistent", ord)
}

// finishLift installs the lifted lasso on the outcome: the concrete
// fragment snapshot becomes WitnessLTS, the witness and counterexample
// are re-decoded against it, and enumerated-alphabet formulas are
// recompiled over the fragment (whose alphabet contains every lifted
// label) so the replay oracle's ¬ϕ automaton reads the concrete labels.
// Symbolic (early-exit) formulas evaluate labels directly and need no
// recompilation.
func finishLift(req Request, inc *lts.Incremental, w *mucalc.Witness, out *Outcome) error {
	wl := inc.Snapshot()
	out.WitnessLTS = wl
	out.Witness = DecodeWitness(wl, w)
	out.Counterexample = w.Trace(wl.Labels)
	if !out.EarlyExit {
		phi, err := Compile(req.Env, wl, req.Property)
		if err != nil {
			return fmt.Errorf("recompiling the property over the lifted fragment: %w", err)
		}
		out.Formula = phi
	}
	return nil
}

// jointQuotient is the once-per-group joint refinement VerifyAll shares
// across the properties of one observable-set group: the partition of
// the explored LTS under the product of every property's observation
// classes, plus its projected LTS (lts.QuotientLTS) for the per-property
// second-stage minimisations to run on.
type jointQuotient struct {
	q *lts.Quotient
	l *lts.LTS
}

// buildJoint compiles every LTL property of a group over the explored
// LTS, joins their observation-class vectors and refines once. It
// returns nil — each property then refines the full LTS itself, exactly
// as without reuse — when fewer than two properties contribute a
// non-trivial class vector (no sharing to be had) or any compilation
// fails (the failing property will surface its own error).
func buildJoint(ctx context.Context, env *types.Env, m *lts.LTS, props []Property) *jointQuotient {
	var vecs [][]int32
	for _, p := range props {
		if p.Kind == EventualOutput {
			continue
		}
		phi, err := Compile(env, m, p)
		if err != nil {
			return nil
		}
		if mucalc.TriviallyTrue(phi) {
			continue
		}
		classes, _ := mucalc.LabelClasses(m.Labels, phi)
		vecs = append(vecs, classes)
	}
	if len(vecs) < 2 {
		return nil
	}
	joint := vecs[0]
	for _, v := range vecs[1:] {
		joint = combineClasses(joint, v)
	}
	q, err := lts.MinimizeContext(ctx, m, joint)
	if err != nil {
		return nil
	}
	return &jointQuotient{q: q, l: lts.QuotientLTS(q)}
}

// combineClasses intersects two per-label class vectors into the dense
// product partition, numbering the pairs in first-encounter label order
// so the result is deterministic.
func combineClasses(a, b []int32) []int32 {
	seen := map[[2]int32]int32{}
	out := make([]int32, len(a))
	for i := range a {
		k := [2]int32{a[i], b[i]}
		id, ok := seen[k]
		if !ok {
			id = int32(len(seen))
			seen[k] = id
		}
		out[i] = id
	}
	return out
}

// checkReducedJoint is checkReduced on a shared joint quotient: the
// property minimises the joint LTS (states = joint blocks, labels =
// concrete label indices) instead of the full one, and a FAIL witness is
// lifted in two stages — property quotient → joint blocks, then joint
// blocks → concrete states — before the caller re-validates it with the
// replay oracle. Quotient-of-quotient by the property's (coarser)
// classes equals the direct quotient, so verdicts and block counts match
// checkReduced exactly.
func checkReducedJoint(ctx context.Context, m *lts.LTS, j *jointQuotient, phi mucalc.Formula, out *Outcome) (mucalc.Result, error) {
	if mucalc.TriviallyTrue(phi) {
		return mucalc.CheckContext(ctx, m, phi)
	}
	classes, _ := mucalc.LabelClasses(j.l.Labels, phi)
	q2, err := lts.MinimizeContext(ctx, j.l, classes)
	if err != nil {
		return mucalc.Result{}, err
	}
	out.ReducedStates = q2.NumBlocks()
	res, err := mucalc.CheckModelContext(ctx, mucalc.QuotientModel(q2), phi)
	if err != nil || res.Holds {
		return res, err
	}
	w2, err := liftWitness(q2, res.Witness)
	if err != nil {
		return res, fmt.Errorf("verify: lifting the joint-quotient counterexample to joint blocks: %w", err)
	}
	w1, err := liftWitness(j.q, w2)
	if err != nil {
		return res, fmt.Errorf("verify: lifting the joint-block counterexample to concrete states: %w", err)
	}
	res.Witness = w1
	res.Counterexample = w1.Trace(m.Labels)
	return res, nil
}
