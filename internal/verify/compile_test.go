package verify

import (
	"strings"
	"testing"

	"effpi/internal/lts"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// exploreLoop builds a one-channel output loop and its closed LTS.
func exploreLoop(t *testing.T) (*types.Env, *lts.LTS) {
	t.Helper()
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	loop := types.Par{
		L: types.Rec{Var: "t", Body: types.Out{Ch: types.Var{Name: "x"}, Payload: types.Int{},
			Cont: types.Thunk(types.RecVar{Name: "t"})}},
		R: types.Rec{Var: "t", Body: types.In{Ch: types.Var{Name: "x"},
			Cont: types.Pi{Var: "v", Dom: types.Int{}, Cod: types.RecVar{Name: "t"}}}},
	}
	sem := &typelts.Semantics{Env: env, Observable: map[string]bool{}, WitnessOnly: true}
	m, err := lts.Explore(sem, loop, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return env, m
}

func TestCompileEachKind(t *testing.T) {
	env, m := exploreLoop(t)
	for _, p := range []Property{
		{Kind: NonUsage, Channels: []string{"x"}},
		{Kind: DeadlockFree, Channels: []string{"x"}},
		{Kind: Forwarding, From: "x", To: "x"},
		{Kind: Reactive, From: "x"},
		{Kind: Responsive, From: "x"},
	} {
		phi, err := Compile(env, m, p)
		if err != nil {
			t.Errorf("Compile(%s): %v", p, err)
			continue
		}
		if phi == nil {
			t.Errorf("Compile(%s) returned nil", p)
		}
	}
	// Ev-usage has no LTL compilation (reachability check).
	if _, err := Compile(env, m, Property{Kind: EventualOutput, Channels: []string{"x"}}); err == nil {
		t.Error("Compile(ev-usage) must redirect to EvUsageHolds")
	}
}

func TestCompiledFormulasMentionUseSets(t *testing.T) {
	env, m := exploreLoop(t)
	phi, err := Compile(env, m, Property{Kind: NonUsage, Channels: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(phi.String(), "Uo(x)") {
		t.Errorf("non-usage formula should name the Def. 4.8 set: %s", phi)
	}
}

func TestUsesOnLoop(t *testing.T) {
	env, m := exploreLoop(t)
	u := NewUses(env, m)
	// The closed loop's only label is the x synchronisation, which counts
	// as both an input use and an output use of x.
	if len(u.OutputUses("x")) == 0 {
		t.Error("Uo(x) must include τ[x,x]")
	}
	if len(u.InputUses("x")) == 0 {
		t.Error("Ui(x) must include τ[x,x]")
	}
	if len(u.ImpreciseTaus()) != 0 {
		t.Errorf("precise synchronisations must not be in Aτ")
	}
	if len(u.ExactOutputs("x")) == 0 || len(u.ExactInputs("x")) == 0 {
		t.Error("exact use sets must include the synchronisation")
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		NonUsage: "non-usage", DeadlockFree: "deadlock-free",
		EventualOutput: "ev-usage", Forwarding: "forwarding",
		Reactive: "reactive", Responsive: "responsive",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k, want)
		}
	}
	if len(AllKinds()) != 6 {
		t.Error("AllKinds must list the six Fig. 9 columns")
	}
	p := Property{Kind: Forwarding, From: "a", To: "b"}
	if p.String() != "forwarding(a→b)" {
		t.Errorf("Property.String = %q", p)
	}
}
