package verify

import (
	"fmt"
	"strings"
	"testing"

	"effpi/internal/mucalc"
	"effpi/internal/types"
)

// philosophers builds an n-philosopher/n-fork system inline (the systems
// package sits above verify in the import graph); deadlock selects the
// all-grab-left variant.
func philosophers(n int, deadlock bool) (*types.Env, types.Type) {
	unit := types.Unit{}
	env := types.NewEnv()
	forks := make([]string, n)
	for i := range forks {
		forks[i] = fmt.Sprintf("f%d", i)
		env = env.MustExtend(forks[i], types.ChanIO{Elem: unit})
	}
	out := func(ch string, cont types.Type) types.Type {
		return types.Out{Ch: types.Var{Name: ch}, Payload: unit, Cont: types.Thunk(cont)}
	}
	in := func(ch, v string, cont types.Type) types.Type {
		return types.In{Ch: types.Var{Name: ch}, Cont: types.Pi{Var: v, Dom: unit, Cod: cont}}
	}
	var comps []types.Type
	for i := 0; i < n; i++ {
		comps = append(comps, types.Rec{Var: "t", Body: out(forks[i], in(forks[i], "u", types.RecVar{Name: "t"}))})
	}
	for i := 0; i < n; i++ {
		first, second := forks[i], forks[(i+1)%n]
		if !deadlock && i == 0 {
			first, second = second, first
		}
		comps = append(comps, types.Rec{Var: "t", Body: in(first, "u", in(second, "u2",
			out(first, out(second, types.RecVar{Name: "t"}))))})
	}
	return env, types.ParOf(comps...)
}

// TestWitnessThreadedThroughVerify: the standard pipeline attaches a
// decoded witness to every LTL FAIL, consistent with the Counterexample,
// with every visited state decoded to a component multiset, and Replay
// accepts it.
func TestWitnessThreadedThroughVerify(t *testing.T) {
	env, sys := philosophers(3, true)
	o, err := Verify(Request{Env: env, Type: sys, Property: Property{Kind: DeadlockFree, Closed: true}})
	if err != nil {
		t.Fatal(err)
	}
	if o.Holds {
		t.Fatal("deadlocking philosophers must fail deadlock-freedom")
	}
	if o.Witness == nil || o.Witness.Raw == nil {
		t.Fatal("FAIL outcome carries no witness")
	}
	if len(o.Witness.Cycle) != len(o.Counterexample.Cycle) || len(o.Witness.Stem) != len(o.Counterexample.Prefix) {
		t.Error("witness and counterexample disagree on lasso shape")
	}
	for _, st := range append(append([]WitnessStep{}, o.Witness.Stem...), o.Witness.Cycle...) {
		if _, ok := o.Witness.States[st.From]; !ok {
			t.Errorf("state %d visited but not decoded", st.From)
		}
		if _, ok := o.Witness.States[st.To]; !ok {
			t.Errorf("state %d visited but not decoded", st.To)
		}
	}
	if err := Replay(o); err != nil {
		t.Errorf("replay: %v", err)
	}
	// The rendered trace mentions the lasso head's state id and a cycle.
	text := o.Witness.Render(80)
	if !strings.Contains(text, "cycle (repeats forever)") {
		t.Errorf("rendered witness lacks the cycle section:\n%s", text)
	}
}

// TestReplayRejectsTamperedOutcome: Replay is only satisfied by genuine
// witnesses — swapping in the run of a different system, or doctoring
// labels, must fail, as must replaying a PASS.
func TestReplayRejectsTamperedOutcome(t *testing.T) {
	env, sys := philosophers(3, true)
	bad, err := Verify(Request{Env: env, Type: sys, Property: Property{Kind: DeadlockFree, Closed: true}})
	if err != nil {
		t.Fatal(err)
	}
	good, err := Verify(Request{Env: env, Type: sys, Property: Property{Kind: EventualOutput, Channels: []string{"f0"}, Closed: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !good.Holds {
		t.Fatal("ev-usage must hold on philosophers")
	}
	if err := Replay(good); err == nil {
		t.Error("replaying a PASS must fail")
	}

	// Doctor the witness: divert one cycle step to a wrong destination.
	w := bad.Witness.Raw
	w.CycleStates[1]++
	if err := Replay(bad); err == nil {
		t.Error("doctored witness must not replay")
	}
	w.CycleStates[1]--
	if err := Replay(bad); err != nil {
		t.Errorf("restored witness must replay: %v", err)
	}

	// A witness for a formula it does not violate: the structural stage
	// still passes (same LTS), but the Büchi stage must reject — no run
	// violates ⊤, so the ¬⊤ automaton accepts nothing.
	savedFormula := bad.Formula
	bad.Formula = mucalc.True{}
	crossErr := Replay(bad)
	bad.Formula = savedFormula
	if crossErr == nil {
		t.Error("a lasso cannot witness a violation of ⊤: the Büchi replay stage must reject it")
	}
}

// TestReplayEvUsageContract: existential failures carry no witness and
// Replay says so explicitly.
func TestReplayEvUsageContract(t *testing.T) {
	// A system where f0 is never used for output: a single looping input
	// on f1 keeps the composition alive without touching f0.
	env := types.EnvOf(
		"f0", types.ChanIO{Elem: types.Unit{}},
		"f1", types.ChanIO{Elem: types.Unit{}},
	)
	sys := types.ParOf(
		types.Rec{Var: "t", Body: types.Out{Ch: types.Var{Name: "f1"}, Payload: types.Unit{},
			Cont: types.Thunk(types.In{Ch: types.Var{Name: "f1"}, Cont: types.Pi{Var: "u", Dom: types.Unit{}, Cod: types.RecVar{Name: "t"}}})}},
		types.Rec{Var: "t", Body: types.In{Ch: types.Var{Name: "f1"}, Cont: types.Pi{Var: "v", Dom: types.Unit{},
			Cod: types.Out{Ch: types.Var{Name: "f1"}, Payload: types.Unit{}, Cont: types.Thunk(types.RecVar{Name: "t"})}}}},
	)
	o, err := Verify(Request{Env: env, Type: sys, Property: Property{Kind: EventualOutput, Channels: []string{"f0"}, Closed: true}})
	if err != nil {
		t.Fatal(err)
	}
	if o.Holds {
		t.Fatal("ev-usage(f0) must fail: f0 is never used")
	}
	if o.Witness != nil {
		t.Error("existential failure must not carry a witness")
	}
	err = Replay(o)
	if err == nil || !strings.Contains(err.Error(), "existential") {
		t.Errorf("Replay must explain the existential contract, got %v", err)
	}
}

// TestEarlyExitAtMaxStatesFrontier: a violation found before the bound
// bites returns a valid witness even though the space was never fully
// explorable under that bound; a bound too tight to reach any violation
// errors out like the full pipeline.
func TestEarlyExitAtMaxStatesFrontier(t *testing.T) {
	env, sys := philosophers(5, true)
	full, err := Verify(Request{Env: env, Type: sys, Property: Property{Kind: DeadlockFree, Closed: true}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Holds {
		t.Fatal("expected FAIL")
	}

	// The full pipeline cannot verify under a bound below the reachable
	// state count…
	if _, err := Verify(Request{Env: env, Type: sys, Property: Property{Kind: DeadlockFree, Closed: true}, Parallelism: 1, MaxStates: full.States / 2}); err == nil {
		t.Fatal("full pipeline must fail under a bound below the state count")
	}
	// …but early exit finds the violation inside the same budget: the
	// witness lives at the frontier of a partial exploration.
	early, err := Verify(Request{Env: env, Type: sys, Property: Property{Kind: DeadlockFree, Closed: true}, EarlyExit: true, MaxStates: full.States / 2})
	if err != nil {
		t.Fatalf("early exit within the frontier budget: %v", err)
	}
	if early.Holds {
		t.Fatal("early exit must find the violation")
	}
	if early.States > full.States/2 {
		t.Errorf("early exit discovered %d states under a bound of %d", early.States, full.States/2)
	}
	if !early.LTS.Partial {
		t.Error("frontier outcome must carry a partial LTS")
	}
	if err := Replay(early); err != nil {
		t.Errorf("frontier witness must replay: %v", err)
	}

	// A bound too tight for even the violating dive errors out.
	if _, err := Verify(Request{Env: env, Type: sys, Property: Property{Kind: DeadlockFree, Closed: true}, EarlyExit: true, MaxStates: 2}); err == nil {
		t.Fatal("early exit under an unreachably tight bound must error")
	} else if !strings.Contains(err.Error(), "state bound") {
		t.Errorf("want a state-bound error, got: %v", err)
	}
}

// TestEarlyExitFallsBackForAlphabetShapedSchemas: Forwarding, Responsive
// and EventualOutput silently run the full pipeline under EarlyExit.
func TestEarlyExitFallsBackForAlphabetShapedSchemas(t *testing.T) {
	env, sys := philosophers(3, true)
	for _, p := range []Property{
		{Kind: Forwarding, From: "f0", To: "f1", Closed: true},
		{Kind: Responsive, From: "f0", Closed: true},
		{Kind: EventualOutput, Channels: []string{"f0"}, Closed: true},
	} {
		o, err := Verify(Request{Env: env, Type: sys, Property: p, EarlyExit: true})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if o.EarlyExit {
			t.Errorf("%s: must fall back to the full pipeline", p)
		}
		if o.LTS == nil || o.LTS.Partial {
			t.Errorf("%s: fallback must explore fully", p)
		}
	}
}
