package verify

import (
	"context"
	"testing"

	"effpi/internal/lts"
	"effpi/internal/mucalc"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// reductionFixture pairs a request with whether its compiled formula is
// trivially ⊤ (empty probe use-sets simplify away — the Reduce stage
// skips quotienting for those and ReducedStates stays 0).
type reductionFixture struct {
	req     Request
	trivial bool
}

// reductionFixtures is a mixed bag of PASS and FAIL requests across the
// LTL-checked schemas (open and closed), small enough for the unit suite.
func reductionFixtures() []reductionFixture {
	env := types.EnvOf(
		"x", types.ChanIO{Elem: types.Int{}},
		"y", types.ChanIO{Elem: types.Int{}},
		"aud", types.ChanIO{Elem: types.Str{}},
	)
	loop := func(ch string) types.Type {
		return types.Rec{Var: "t", Body: types.Out{Ch: tv(ch), Payload: types.Int{},
			Cont: types.Thunk(types.RecVar{Name: "t"})}}
	}
	oneShot := types.In{Ch: tv("aud"), Cont: types.Pi{Var: "a", Dom: types.Str{}, Cod: types.Nil{}}}
	looping := types.Rec{Var: "t", Body: types.In{Ch: tv("aud"),
		Cont: types.Pi{Var: "a", Dom: types.Str{}, Cod: types.RecVar{Name: "t"}}}}
	stuck := types.Par{L: loop("x"), R: types.Out{Ch: tv("y"), Payload: types.Int{}, Cont: types.Thunk(types.Nil{})}}

	return []reductionFixture{
		// loop(x) never uses y, so the non-usage probe's use-set is empty
		// and the formula simplifies to ⊤: no quotient is refined.
		{req: Request{Env: env, Type: loop("x"), Property: Property{Kind: NonUsage, Channels: []string{"y"}}}, trivial: true},
		{req: Request{Env: env, Type: loop("y"), Property: Property{Kind: NonUsage, Channels: []string{"y"}}}},
		{req: Request{Env: env, Type: oneShot, Property: Property{Kind: Reactive, From: "aud"}}},
		{req: Request{Env: env, Type: looping, Property: Property{Kind: Reactive, From: "aud"}}},
		{req: Request{Env: env, Type: stuck, Property: Property{Kind: DeadlockFree, Channels: []string{"x"}, Closed: true}}},
		{req: Request{Env: env, Type: loop("x"), Property: Property{Kind: DeadlockFree, Channels: []string{"x"}, Closed: true}}},
	}
}

// TestReductionVerdictsMatchFull: every fixture gets the same verdict
// with the Reduce stage on and off; reduced FAILs carry a lifted witness
// that the replay oracle accepts (Verify itself enforces this, but the
// test re-runs Replay on the returned outcome to pin the public
// contract), and ReducedStates reports a non-trivial block count.
func TestReductionVerdictsMatchFull(t *testing.T) {
	for i, fx := range reductionFixtures() {
		req := fx.req
		base, err := Verify(req)
		if err != nil {
			t.Fatalf("fixture %d (%s): %v", i, req.Property, err)
		}
		req.Reduction = ReduceStrong
		red, err := Verify(req)
		if err != nil {
			t.Fatalf("fixture %d (%s) reduced: %v", i, req.Property, err)
		}
		if red.Holds != base.Holds {
			t.Errorf("fixture %d (%s): reduced verdict %v, full %v", i, req.Property, red.Holds, base.Holds)
		}
		if red.States != base.States {
			t.Errorf("fixture %d (%s): reduced States %d, full %d (States must stay the concrete count)", i, req.Property, red.States, base.States)
		}
		if fx.trivial {
			if red.ReducedStates != 0 {
				t.Errorf("fixture %d (%s): trivially-true formula must skip the Reduce stage, got ReducedStates %d", i, req.Property, red.ReducedStates)
			}
		} else if red.ReducedStates <= 0 || red.ReducedStates > red.States {
			t.Errorf("fixture %d (%s): ReducedStates %d out of range (states %d)", i, req.Property, red.ReducedStates, red.States)
		}
		if base.ReducedStates != 0 {
			t.Errorf("fixture %d (%s): unreduced outcome reports ReducedStates %d", i, req.Property, base.ReducedStates)
		}
		if !red.Holds {
			if red.Witness == nil || red.Witness.Raw == nil {
				t.Fatalf("fixture %d (%s): reduced FAIL without witness", i, req.Property)
			}
			if err := Replay(red); err != nil {
				t.Errorf("fixture %d (%s): lifted witness does not replay: %v", i, req.Property, err)
			}
		}
	}
}

// TestReductionEvUsageRunsConcrete: the existential schema has no
// formula, so the Reduce stage does not apply — the verdict must still
// match and ReducedStates stay zero.
func TestReductionEvUsageRunsConcrete(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	p := types.Rec{Var: "t", Body: types.Out{Ch: tv("x"), Payload: types.Int{},
		Cont: types.Thunk(types.RecVar{Name: "t"})}}
	req := Request{Env: env, Type: p, Property: Property{Kind: EventualOutput, Channels: []string{"x"}}}
	base, err := Verify(req)
	if err != nil {
		t.Fatal(err)
	}
	req.Reduction = ReduceStrong
	red, err := Verify(req)
	if err != nil {
		t.Fatal(err)
	}
	if red.Holds != base.Holds || red.ReducedStates != 0 {
		t.Errorf("ev-usage under reduction: holds=%v (want %v), reduced=%d (want 0)", red.Holds, base.Holds, red.ReducedStates)
	}
}

// TestReductionEarlyExitPrecedence: when a request asks for both
// on-the-fly checking and reduction, the on-the-fly engine wins for the
// symbolically compilable schemas (on-the-fly quotienting is a ROADMAP
// follow-on) — the outcome is flagged EarlyExit with no ReducedStates.
func TestReductionEarlyExitPrecedence(t *testing.T) {
	env := types.EnvOf("aud", types.ChanIO{Elem: types.Str{}})
	oneShot := types.In{Ch: tv("aud"), Cont: types.Pi{Var: "a", Dom: types.Str{}, Cod: types.Nil{}}}
	o, err := Verify(Request{Env: env, Type: oneShot,
		Property: Property{Kind: Reactive, From: "aud"}, EarlyExit: true, Reduction: ReduceStrong})
	if err != nil {
		t.Fatal(err)
	}
	if !o.EarlyExit {
		t.Fatal("early-exit request did not take the on-the-fly path")
	}
	if o.ReducedStates != 0 {
		t.Errorf("on-the-fly outcome reports ReducedStates %d, want 0", o.ReducedStates)
	}
}

// TestReductionVerifyAllMatrix: the batched pipeline agrees with itself
// across reduction on/off and parallelism, including shared-LTS reuse.
func TestReductionVerifyAllMatrix(t *testing.T) {
	env := types.EnvOf(
		"x", types.ChanIO{Elem: types.Int{}},
		"y", types.ChanIO{Elem: types.Int{}},
	)
	sys := types.Par{
		L: types.Rec{Var: "t", Body: types.Out{Ch: tv("x"), Payload: types.Int{}, Cont: types.Thunk(types.RecVar{Name: "t"})}},
		R: types.Rec{Var: "t", Body: types.In{Ch: tv("x"), Cont: types.Pi{Var: "v", Dom: types.Int{}, Cod: types.RecVar{Name: "t"}}}},
	}
	props := []Property{
		{Kind: DeadlockFree, Channels: []string{"x"}, Closed: true},
		// y is never used: this non-usage formula simplifies to ⊤ and
		// skips the Reduce stage (ReducedStates 0).
		{Kind: NonUsage, Channels: []string{"y"}, Closed: true},
		{Kind: Reactive, From: "x", Closed: true},
		{Kind: EventualOutput, Channels: []string{"x"}, Closed: true},
	}
	trivial := map[Kind]bool{NonUsage: true, EventualOutput: true}
	base, err := VerifyAllWith(env, sys, props, AllOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		outs, err := VerifyAllWith(env, sys, props, AllOptions{Parallelism: par, Reduction: ReduceStrong})
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		for i := range base {
			if outs[i].Holds != base[i].Holds {
				t.Errorf("par %d %s: reduced verdict %v, full %v", par, base[i].Property, outs[i].Holds, base[i].Holds)
			}
			wantReduced := !trivial[base[i].Property.Kind]
			if (outs[i].ReducedStates > 0) != wantReduced {
				t.Errorf("par %d %s: ReducedStates=%d, want reduced=%v", par, base[i].Property, outs[i].ReducedStates, wantReduced)
			}
		}
	}
}

// TestLiftWitnessContractViolations: the lift refuses malformed or
// inconsistent quotient witnesses instead of fabricating a run.
func TestLiftWitnessContractViolations(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	sem := &typelts.Semantics{Env: env, Observable: map[string]bool{}}
	stuck := types.Out{Ch: tv("x"), Payload: types.Int{}, Cont: types.Thunk(types.Nil{})}
	m, err := lts.Explore(sem, stuck, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := lts.Minimize(m, nil)

	if _, err := liftWitness(q, nil); err == nil {
		t.Error("nil witness must be rejected")
	}
	if _, err := liftWitness(q, &mucalc.Witness{StemStates: []int{0}, CycleStates: []int{0}}); err == nil {
		t.Error("empty cycle must be rejected")
	}
	// A stem that claims the initial state sits in a non-existent block.
	bad := &mucalc.Witness{
		StemStates:  []int{q.NumBlocks() + 3, 0},
		StemLabels:  []int32{0},
		CycleStates: []int{0, 0},
		CycleLabels: []int32{0},
	}
	if _, err := liftWitness(q, bad); err == nil {
		t.Error("stem starting in the wrong block must be rejected")
	}
	// A cycle move the quotient cannot fire.
	head := q.InitialBlock()
	if _, err := liftWitness(q, &mucalc.Witness{
		StemStates:  []int{head},
		CycleStates: []int{head, q.NumBlocks() + 1, head},
		CycleLabels: []int32{0, 0},
	}); err == nil {
		t.Error("cycle through a non-existent block must be rejected")
	}
}

// TestParseReduction covers the flag/wire-name round trip.
func TestParseReduction(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Reduction
	}{{"off", ReduceOff}, {"strong", ReduceStrong}} {
		got, err := ParseReduction(tc.name)
		if err != nil || got != tc.want {
			t.Errorf("ParseReduction(%q) = %v, %v", tc.name, got, err)
		}
		if got.String() != tc.name {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.name)
		}
	}
	if _, err := ParseReduction("branching"); err == nil {
		t.Error("unknown reduction name must error")
	}
}

// TestReductionCancellation: a cancelled context surfaces promptly from
// the Reduce stage and is errors.Is-classifiable.
func TestReductionCancellation(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	p := types.Rec{Var: "t", Body: types.Out{Ch: tv("x"), Payload: types.Int{},
		Cont: types.Thunk(types.RecVar{Name: "t"})}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := VerifyContext(ctx, Request{Env: env, Type: p,
		Property: Property{Kind: NonUsage, Channels: []string{"x"}}, Reduction: ReduceStrong})
	if err == nil {
		t.Fatal("cancelled reduced verification must error")
	}
}
