package verify

// Exploration-time partial-order reduction (Request.PartialOrder): the
// verifier hands lts.Explore an ample-set filter (lts.POR) whose
// visibility predicate is derived from the property's own action sets —
// the same Fig. 7 machinery the symbolic compiler uses — so the
// exploration registers, per state, only a persistent subset of the
// enabled synchronisations. Ample sets only ever *drop* edges: every
// state and edge of the reduced LTS is a state and edge of the full
// one, so a FAIL witness found on the reduced space is already a
// concrete run and the replay oracle re-validates it directly, with no
// lifting stage (unlike symmetry and bisimulation reduction, which
// check on quotient objects).
//
// Eligibility mirrors the symbolic compiler: NonUsage, DeadlockFree and
// Reactive have alphabet-independent action-set semantics from which a
// sound visible-label set can be computed before exploration. The other
// schemas (Forwarding, Responsive — shaped by the payload variables
// found in the explored alphabet — and EventualOutput, which is not
// LTL) silently run the full exploration. Reactive carries an
// eventuality (Box(Diamond ...)), so its filter uses the strong cycle
// proviso (lts.POR.Liveness); the two safety schemas run with the weak
// queue proviso.
//
// Precedence: symmetry reduction wins when both are requested and a
// group is detected — the orbit exploration's canonicalisation assumes
// it sees every concrete successor, so the two exploration-time
// reductions do not stack (lts.Options documents the same rule). The
// bisimulation Reduce stage and EarlyExit compose freely with POR: both
// consume whatever LTS the exploration produced, and a POR LTS
// preserves their verdicts because it preserves the property itself.

import (
	"fmt"

	"effpi/internal/lts"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// PartialOrderMode selects exploration-time partial-order reduction.
type PartialOrderMode int

const (
	// PartialOrderOff explores every enabled transition (the reference
	// pipeline).
	PartialOrderOff PartialOrderMode = iota
	// PartialOrderOn explores an ample subset of the enabled transitions
	// per state, computed from the participating-component independence
	// relation of the type semantics with the property's visible labels
	// excluded. Verdicts are identical to PartialOrderOff; every FAIL's
	// witness is a concrete run of the reduced (⊆ full) space,
	// re-validated by Replay. The mode only engages for the eligible
	// schemas (NonUsage, DeadlockFree, Reactive) and when symmetry
	// reduction has not claimed the exploration — otherwise it silently
	// runs the full exploration.
	PartialOrderOn
)

var partialOrderNames = map[PartialOrderMode]string{
	PartialOrderOff: "off",
	PartialOrderOn:  "on",
}

func (m PartialOrderMode) String() string {
	if n, ok := partialOrderNames[m]; ok {
		return n
	}
	return fmt.Sprintf("PartialOrderMode(%d)", int(m))
}

// ParsePartialOrder resolves a partial-order mode name ("off", "on") as
// used by CLI flags and service request fields. Unknown names report
// the valid values.
func ParsePartialOrder(name string) (PartialOrderMode, error) {
	for m, n := range partialOrderNames {
		if n == name {
			return m, nil
		}
	}
	return PartialOrderOff, fmt.Errorf("verify: unknown partial-order mode %q (valid values: %s)", name, validModeNames(partialOrderNames))
}

// porEligible reports whether the schema's action-set semantics support
// a pre-exploration visible-label set (the same three schemas the
// symbolic compiler handles).
func porEligible(k Kind) bool {
	switch k {
	case NonUsage, DeadlockFree, Reactive:
		return true
	default:
		return false
	}
}

// porProps decides, per batch property, whether it takes the
// partial-order path in VerifyAll (own ample exploration instead of the
// group's shared LTS): the mode must be on, the schema eligible, and —
// when symmetry reduction is also requested for a closed property — the
// batch must not have a detectable symmetry group, because a detected
// group claims the exploration (same precedence VerifyContext applies).
// The probe runs DetectSymmetry at most once, with the same pinned set
// the group exploration would use, so the two decisions agree.
func porProps(cache *typelts.Cache, t types.Type, props []Property, obsSets []map[string]bool, propErrs []error, opts AllOptions) []bool {
	out := make([]bool, len(props))
	if opts.PartialOrder != PartialOrderOn {
		return out
	}
	var probed, symDetected bool
	for i, p := range props {
		if propErrs[i] != nil || !porEligible(p.Kind) {
			continue
		}
		if opts.Symmetry == SymmetryOn && len(obsSets[i]) == 0 {
			if !probed {
				probed = true
				symDetected = lts.DetectSymmetry(cache, t, batchPinnedChannels(props)) != nil
			}
			if symDetected {
				continue
			}
		}
		out[i] = true
	}
	return out
}

// porFilter builds the ample-set filter for an eligible property, or
// nil for the rest. The visible set contains exactly the labels whose
// presence or position a run of the property's formula can distinguish
// — every other label is stuttering the next-free formula cannot see:
//
//   - NonUsage(x̄): Box(¬ out-uses(x̄)) — violating labels are the
//     output uses of the probed channels (Def. 4.8).
//   - DeadlockFree(x̄): no imprecise synchronisation, and every action
//     is τ, an exact I/O on the probed channels, or ✔ — visible labels
//     are the imprecise τ's and anything outside that allowed set
//     (which includes ⊠; completion self-loops are added to edge-less
//     states after filtering and are never dropped).
//   - Reactive(x): no imprecise synchronisation, and in(x) is always
//     eventually enabled — visible labels are the imprecise τ's and the
//     exact inputs of x; the eventuality makes the filter use the
//     strong cycle proviso.
func porFilter(env *types.Env, p Property) *lts.POR {
	switch p.Kind {
	case NonUsage:
		uses := outputUsesSet(env, p.Channels)
		return &lts.POR{Visible: uses.Contains}
	case DeadlockFree:
		imprecise := impreciseTauSet(env)
		allowed := exactIOSet(p.Channels)
		return &lts.POR{Visible: func(l typelts.Label) bool {
			if imprecise.Contains(l) {
				return true
			}
			if _, done := l.(typelts.Done); done {
				return false
			}
			return !(typelts.IsTau(l) || allowed.Contains(l))
		}}
	case Reactive:
		imprecise := impreciseTauSet(env)
		inputs := exactInputSet(p.From)
		return &lts.POR{
			Visible: func(l typelts.Label) bool {
				return imprecise.Contains(l) || inputs.Contains(l)
			},
			Liveness: true,
		}
	default:
		return nil
	}
}
