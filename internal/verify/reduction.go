package verify

// The Reduce stage of the verification pipeline (Explore → Reduce →
// Check): quotient the explored LTS by strong bisimulation over the
// property's observation classes, model-check on blocks, and lift a
// block-level counterexample back to a concrete run that the PR 3 replay
// oracle re-validates. See DESIGN.md §reduction for the soundness
// argument and the determinism contract.

import (
	"context"
	"fmt"

	"effpi/internal/lts"
	"effpi/internal/mucalc"
)

// Reduction selects the state-space reduction applied between
// exploration and checking.
type Reduction int

const (
	// ReduceOff checks on the concrete LTS (the reference pipeline).
	ReduceOff Reduction = iota
	// ReduceStrong quotients the LTS by strong bisimulation over the
	// property's observation classes (labels the compiled formula's
	// automaton cannot distinguish, mucalc.LabelClasses) before checking.
	// Verdicts are identical to ReduceOff — the quotient preserves
	// exactly the runs the automaton can observe — and every FAIL's
	// witness is lifted to a concrete lasso and re-validated by Replay,
	// so the lift's soundness is machine-checked per verdict. Symmetric
	// systems shrink by orders of magnitude; the worst case is a
	// same-size quotient plus the refinement cost.
	ReduceStrong
)

var reductionNames = map[Reduction]string{
	ReduceOff:    "off",
	ReduceStrong: "strong",
}

func (r Reduction) String() string {
	if n, ok := reductionNames[r]; ok {
		return n
	}
	return fmt.Sprintf("Reduction(%d)", int(r))
}

// ParseReduction resolves a reduction name ("off", "strong") as used by
// CLI flags and service request fields. Unknown names report the valid
// values.
func ParseReduction(name string) (Reduction, error) {
	for r, n := range reductionNames {
		if n == name {
			return r, nil
		}
	}
	return ReduceOff, fmt.Errorf("verify: unknown reduction %q (valid values: %s)", name, validModeNames(reductionNames))
}

// checkReduced runs the Reduce → Check stages for one compiled formula:
// partition the LTS over the formula's label classes, check on the
// quotient, and — on FAIL — lift the block lasso to a concrete one. The
// outcome's ReducedStates records the block count actually checked; the
// caller re-validates the lifted witness with the replay oracle.
func checkReduced(ctx context.Context, m *lts.LTS, phi mucalc.Formula, out *Outcome) (mucalc.Result, error) {
	if mucalc.TriviallyTrue(phi) {
		// The checker answers ⊤ without touching the model; refining the
		// partition first would be pure overhead. ReducedStates stays 0:
		// no Reduce stage ran.
		return mucalc.CheckContext(ctx, m, phi)
	}
	// LabelClasses re-translates ¬ϕ internally rather than sharing the
	// checker's automaton: translation of the schema formulas is
	// microseconds against the refinement's edge-array passes, and the
	// independence mirrors Replay's trust structure (classes and oracle
	// each derive the automaton from the formula alone).
	classes, _ := mucalc.LabelClasses(m.Labels, phi)
	q, err := lts.MinimizeContext(ctx, m, classes)
	if err != nil {
		return mucalc.Result{}, err
	}
	out.ReducedStates = q.NumBlocks()
	res, err := mucalc.CheckModelContext(ctx, mucalc.QuotientModel(q), phi)
	if err != nil || res.Holds {
		return res, err
	}
	lifted, err := liftWitness(q, res.Witness)
	if err != nil {
		return res, fmt.Errorf("verify: lifting the quotient counterexample: %w", err)
	}
	res.Witness = lifted
	res.Counterexample = lifted.Trace(m.Labels)
	return res, nil
}

// liftWitness turns a lasso over quotient blocks into a lasso over
// concrete states of q.Full:
//
//   - Stem: walk from the concrete initial state, at each step following
//     the first concrete edge (in edge order) whose label class and
//     destination block match the quotient step — stability of the
//     partition guarantees one exists from *every* member of the block.
//   - Cycle: unroll the quotient cycle from the reached lasso-head state;
//     each unrolling ends on some member of the head block, so within
//     |head block|+1 unrollings a concrete state repeats (pigeonhole).
//     The steps before the first repeat extend the stem; the steps
//     between its two occurrences are the concrete cycle.
//
// The lifted label word is stem·(cycle)^ω with the same class word as
// the quotient lasso's — and the ¬ϕ automaton only observes classes — so
// the lifted run violates the property iff the quotient run does. The
// caller still re-validates via Replay rather than trusting this
// argument: a FAIL's witness is machine-checked evidence, not a proof
// sketch.
func liftWitness(q *lts.Quotient, w *mucalc.Witness) (*mucalc.Witness, error) {
	if w == nil {
		return nil, fmt.Errorf("no quotient witness to lift")
	}
	if len(w.StemStates) != len(w.StemLabels)+1 || len(w.CycleStates) != len(w.CycleLabels)+1 || len(w.CycleLabels) == 0 {
		return nil, fmt.Errorf("malformed quotient witness (%d/%d stem, %d/%d cycle)",
			len(w.StemStates), len(w.StemLabels), len(w.CycleStates), len(w.CycleLabels))
	}

	lifted := &mucalc.Witness{}
	cur := q.Full.Initial
	lifted.StemStates = append(lifted.StemStates, cur)
	step := func(qlab int32, dstBlock int) (int, error) {
		e, ok := q.FindLift(cur, qlab, int32(dstBlock))
		if !ok {
			return 0, fmt.Errorf("state %d (block %d) has no edge of class %d into block %d — partition not stable",
				cur, q.BlockOf[cur], q.Class(qlab), dstBlock)
		}
		lifted.StemLabels = append(lifted.StemLabels, e.Label)
		return int(e.Dst), nil
	}

	// Stem: one concrete step per quotient stem step.
	for i, qlab := range w.StemLabels {
		if int(q.BlockOf[cur]) != w.StemStates[i] {
			return nil, fmt.Errorf("stem step %d: concrete state %d is in block %d, quotient stem says %d",
				i, cur, q.BlockOf[cur], w.StemStates[i])
		}
		next, err := step(qlab, w.StemStates[i+1])
		if err != nil {
			return nil, err
		}
		cur = next
		lifted.StemStates = append(lifted.StemStates, cur)
	}

	// Cycle: unroll until a concrete state repeats at a cycle start.
	head := w.CycleStates[0]
	if int(q.BlockOf[cur]) != head {
		return nil, fmt.Errorf("lasso head: concrete state %d is in block %d, quotient head is %d", cur, q.BlockOf[cur], head)
	}
	cyclen := len(w.CycleLabels)
	bound := len(q.Members(head)) + 1
	firstSeen := map[int]int{} // concrete state at a cycle start → unroll index
	for iter := 0; iter <= bound; iter++ {
		if at, ok := firstSeen[cur]; ok {
			// Closed: the first at·cyclen unrolled steps stay on the
			// stem, the rest form the concrete cycle on cur.
			cut := len(w.StemLabels) + at*cyclen
			cyc := &mucalc.Witness{
				StemStates:  lifted.StemStates[:cut+1],
				StemLabels:  lifted.StemLabels[:cut],
				CycleStates: lifted.StemStates[cut:],
				CycleLabels: lifted.StemLabels[cut:],
			}
			return cyc, nil
		}
		firstSeen[cur] = iter
		for j, qlab := range w.CycleLabels {
			next, err := step(qlab, w.CycleStates[j+1])
			if err != nil {
				return nil, err
			}
			cur = next
			lifted.StemStates = append(lifted.StemStates, cur)
		}
	}
	return nil, fmt.Errorf("cycle did not close within %d unrollings of the head block (%d members) — quotient is inconsistent",
		bound, len(q.Members(head)))
}
