package verify

import (
	"fmt"
	"strings"

	"effpi/internal/lts"
	"effpi/internal/mucalc"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// Witness is a decoded counterexample: the checker's state-level lasso
// (Raw) resolved against the explored type LTS, with every visited state
// decoded back to its parallel component multiset. It is the user-facing
// artifact of a FAIL verdict — Render prints it as a step-by-step trace —
// and the replayable evidence Replay validates.
type Witness struct {
	// Raw is the state/label-index lasso over the outcome's LTS.
	Raw *mucalc.Witness
	// Stem runs from the initial state to the lasso head; Cycle loops on
	// the head forever.
	Stem, Cycle []WitnessStep
	// States maps every state id visited by the lasso to its component
	// multiset: the FlattenPar leaves of the state's interned
	// representative type.
	States map[int][]types.Type
}

// WitnessStep is one transition of a witness run.
type WitnessStep struct {
	From, To int
	Label    typelts.Label
}

// Head returns the lasso head state id.
func (w *Witness) Head() int { return w.Raw.Head() }

// DecodeWitness resolves a checker witness against the LTS it was
// extracted from: label indices become labels, state ids get their
// component multisets. Returns nil when raw is nil.
func DecodeWitness(m *lts.LTS, raw *mucalc.Witness) *Witness {
	if raw == nil {
		return nil
	}
	w := &Witness{Raw: raw, States: map[int][]types.Type{}}
	decode := func(states []int, labels []int32) []WitnessStep {
		steps := make([]WitnessStep, 0, len(labels))
		for i, lab := range labels {
			steps = append(steps, WitnessStep{From: states[i], To: states[i+1], Label: m.Labels[lab]})
		}
		for _, s := range states {
			if _, ok := w.States[s]; !ok {
				w.States[s] = types.FlattenPar(m.States[s])
			}
		}
		return steps
	}
	w.Stem = decode(raw.StemStates, raw.StemLabels)
	w.Cycle = decode(raw.CycleStates, raw.CycleLabels)
	return w
}

// StateText pretty-prints a visited state as its component multiset.
func (w *Witness) StateText(s int) string {
	comps := w.States[s]
	if len(comps) == 0 {
		return "nil"
	}
	parts := make([]string, len(comps))
	for i, c := range comps {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ‖ ")
}

// Render prints the witness as a human-readable trace: the stem from the
// initial state, then the cycle that repeats forever. width truncates the
// printed component multisets (0 = no truncation).
func (w *Witness) Render(width int) string {
	clip := func(s string) string { return ClipRunes(s, width) }
	var b strings.Builder
	fmt.Fprintf(&b, "  s%-4d %s\n", w.Raw.StemStates[0], clip(w.StateText(w.Raw.StemStates[0])))
	for _, st := range w.Stem {
		fmt.Fprintf(&b, "    —[%s]→\n  s%-4d %s\n", st.Label, st.To, clip(w.StateText(st.To)))
	}
	fmt.Fprintf(&b, "  cycle (repeats forever):\n")
	for _, st := range w.Cycle {
		fmt.Fprintf(&b, "    —[%s]→\n  s%-4d %s\n", st.Label, st.To, clip(w.StateText(st.To)))
	}
	return b.String()
}

// ClipRunes truncates s to at most n runes (0 = no truncation). The cut
// falls on a rune boundary — rendered types and terms are full of
// multi-byte glyphs (‖, ⟨⟩, …), and a byte-offset cut would split one.
// Shared with the CLI's trace printing.
func ClipRunes(s string, n int) string {
	if n <= 0 {
		return s
	}
	count := 0
	for i := range s {
		count++
		if count > n {
			return s[:i] + "…"
		}
	}
	return s
}

// Replay re-validates a FAIL outcome by machine-checking its witness, the
// package's trust story for negative verdicts: (1) structurally, every
// stem and cycle step must be a real edge of the outcome's LTS and the
// cycle must close on the lasso head (mucalc.Witness.Validate); (2)
// semantically, the Büchi automaton freshly re-translated from ¬ϕ must
// accept the lasso's label word stem·cycle^ω (Buchi.AcceptsLasso) — i.e.
// the run really violates the property, established by a different
// algorithm than the nested product DFS that produced it.
//
// EventualOutput outcomes are rejected: the schema is checked
// existentially (EvUsageHolds), and its failures — "no run ever reaches
// the output" — have no finite single-run witness.
func Replay(o *Outcome) error {
	if o.Holds {
		return fmt.Errorf("verify: %s holds; there is no violation to replay", o.Property)
	}
	if o.Property.Kind == EventualOutput {
		return fmt.Errorf("verify: %s is existential (EvUsageHolds); its failures have no single-run witness", o.Property)
	}
	if o.Witness == nil || o.Witness.Raw == nil {
		return fmt.Errorf("verify: %s failed but no witness was recorded", o.Property)
	}
	// A symmetric FAIL's witness is a concrete run over the lifted
	// fragment, not over the orbit LTS the verdict was computed on.
	m := o.LTS
	if o.WitnessLTS != nil {
		m = o.WitnessLTS
	}
	if m == nil {
		return fmt.Errorf("verify: %s: outcome carries no LTS to replay against", o.Property)
	}
	if o.Formula == nil {
		return fmt.Errorf("verify: %s: outcome carries no formula to replay against", o.Property)
	}
	if err := o.Witness.Raw.Validate(mucalc.LTSModel(m)); err != nil {
		return fmt.Errorf("verify: %s: witness is not a run of the LTS: %w", o.Property, err)
	}
	tr := o.Witness.Raw.Trace(m.Labels)
	ba := mucalc.Translate(mucalc.Not{F: mucalc.Simplify(o.Formula)})
	if !ba.AcceptsLasso(tr.Prefix, tr.Cycle) {
		return fmt.Errorf("verify: %s: witness run does not violate the property (¬ϕ automaton rejects its label word)", o.Property)
	}
	return nil
}
