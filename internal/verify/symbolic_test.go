package verify

import (
	"testing"

	"effpi/internal/lts"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// The early-exit pipeline's verdicts equal the full pipeline's only
// because the symbolic action sets (symbolic.go) and the enumerated
// Def. 4.8 sets (uses.go) implement the same membership rule. The rule
// lives twice by design — the predicates need no alphabet, the
// enumerations need no re-derivation per label — so this test is the
// drift guard: over the explored alphabets of systems exercising every
// label shape (free inputs/outputs, precise and imprecise
// synchronisations, subtype-related subjects), each predicate must agree
// with its enumerated counterpart on every single label.

// symbolicFixtures returns systems whose alphabets jointly cover the
// label shapes the sets discriminate on.
func symbolicFixtures(t *testing.T) []struct {
	name     string
	env      *types.Env
	typ      types.Type
	channels []string // probe set for Uo / io
} {
	t.Helper()
	philoEnvDl, philoDl := philosophers(3, true)
	philoEnvOk, philoOk := philosophers(3, false)

	// Open ponger (Ex. 4.11): free inputs and outputs on env vars, with
	// subtype-related subjects (z : ChanIO vs the labels' ChanI/ChanO).
	pongerEnv := types.EnvOf(
		"z", types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}},
		"w", types.ChanO{Elem: types.Str{}},
	)

	// A closed composition over a literal (non-Γ) channel: its only
	// synchronisation is an imprecise τ (Aτ), the case the philosophers
	// systems never produce.
	c := types.ChanIO{Elem: types.Int{}}
	anon := types.ParOf(
		types.Out{Ch: c, Payload: types.Int{}, Cont: types.Thunk(types.Nil{})},
		types.In{Ch: c, Cont: types.Pi{Var: "x", Dom: types.Int{}, Cod: types.Nil{}}},
	)

	return []struct {
		name     string
		env      *types.Env
		typ      types.Type
		channels []string
	}{
		{"philosophers-3-deadlock", philoEnvDl, philoDl, []string{"f0", "f1"}},
		{"philosophers-3-ok", philoEnvOk, philoOk, []string{"f2"}},
		{"ponger-open", pongerEnv, pongerType(), []string{"z", "w"}},
		{"anonymous-channel", types.EnvOf("u", types.ChanO{Elem: types.Int{}}), anon, []string{"u"}},
	}
}

func TestSymbolicSetsAgreeWithEnumerated(t *testing.T) {
	for _, fx := range symbolicFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			// Explore with every probe observable, as the pipeline would for
			// a property over fx.channels.
			obs := map[string]bool{}
			for _, x := range fx.channels {
				obs[x] = true
			}
			sem := &typelts.Semantics{Env: fx.env, Observable: obs, WitnessOnly: true}
			m, err := lts.Explore(sem, fx.typ, lts.Options{MaxStates: 1 << 16})
			if err != nil {
				t.Fatal(err)
			}
			alphabet := m.Alphabet()
			if len(alphabet) == 0 {
				t.Fatal("fixture explores to an empty alphabet — it guards nothing")
			}
			u := NewUses(fx.env, m)

			member := func(set []typelts.Label) map[string]bool {
				out := map[string]bool{}
				for _, l := range set {
					out[l.String()] = true
				}
				return out
			}

			// Uo(channels): union of the per-channel enumerations.
			var uo []typelts.Label
			for _, x := range fx.channels {
				uo = append(uo, u.OutputUses(x)...)
			}
			// io(channels): exact inputs ∪ exact outputs per channel.
			var io []typelts.Label
			for _, x := range fx.channels {
				io = append(io, u.ExactInputs(x)...)
				io = append(io, u.ExactOutputs(x)...)
			}

			cases := []struct {
				name       string
				enumerated map[string]bool
				symbolic   func(typelts.Label) bool
			}{
				{"output-uses", member(uo), outputUsesSet(fx.env, fx.channels).Contains},
				{"imprecise-tau", member(u.ImpreciseTaus()), impreciseTauSet(fx.env).Contains},
				{"exact-io", member(io), exactIOSet(fx.channels).Contains},
			}
			for _, x := range fx.channels {
				cases = append(cases, struct {
					name       string
					enumerated map[string]bool
					symbolic   func(typelts.Label) bool
				}{"exact-input-" + x, member(u.ExactInputs(x)), exactInputSet(x).Contains})
			}

			for _, c := range cases {
				hits := 0
				for _, l := range alphabet {
					got := c.symbolic(l)
					want := c.enumerated[l.String()]
					if got != want {
						t.Errorf("%s: label %s: symbolic predicate says %v, Def. 4.8 enumeration says %v",
							c.name, l, got, want)
					}
					if got {
						hits++
					}
				}
				t.Logf("%s: %d/%d labels in the set", c.name, hits, len(alphabet))
			}
		})
	}
}

// TestSymbolicFixturesCoverLabelShapes fails if the fixture set stops
// producing one of the label shapes the sets discriminate on — an empty
// agreement check over a shape proves nothing.
func TestSymbolicFixturesCoverLabelShapes(t *testing.T) {
	sawInput, sawOutput, sawPrecise, sawImprecise := false, false, false, false
	for _, fx := range symbolicFixtures(t) {
		obs := map[string]bool{}
		for _, x := range fx.channels {
			obs[x] = true
		}
		sem := &typelts.Semantics{Env: fx.env, Observable: obs, WitnessOnly: true}
		m, err := lts.Explore(sem, fx.typ, lts.Options{MaxStates: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		imprecise := impreciseTauSet(fx.env)
		for _, l := range m.Alphabet() {
			switch l.(type) {
			case typelts.Input:
				sawInput = true
			case typelts.Output:
				sawOutput = true
			case typelts.Comm:
				if imprecise.Contains(l) {
					sawImprecise = true
				} else {
					sawPrecise = true
				}
			}
		}
	}
	if !sawInput || !sawOutput || !sawPrecise || !sawImprecise {
		t.Errorf("fixtures miss a label shape: input=%v output=%v precise-τ=%v imprecise-τ=%v",
			sawInput, sawOutput, sawPrecise, sawImprecise)
	}
}
