// Package core is the public façade of the effpi-go reproduction: the
// paper's headline pipeline in one place. A Program is parsed from the
// concrete syntax, type-checked against the λπ⩽ type system (§3),
// verified against temporal properties by type-level model checking (§4),
// and executed under the operational semantics (§2) — so that, as the
// paper promises, "if a program type-checks and compiles, then it will
// run and communicate as desired".
package core

import (
	"fmt"

	"effpi/internal/reduce"
	"effpi/internal/syntax"
	"effpi/internal/term"
	"effpi/internal/typecheck"
	"effpi/internal/types"
	"effpi/internal/verify"
)

// Program is a parsed λπ⩽ program together with its typing environment.
type Program struct {
	Term term.Term
	Env  *types.Env
	// typ caches the inferred type after Check.
	typ types.Type
}

// Parse reads a program in the .epi concrete syntax with an empty
// environment.
func Parse(src string) (*Program, error) {
	return ParseInEnv(src, types.NewEnv())
}

// ParseInEnv reads a program whose free variables are typed by env.
func ParseInEnv(src string, env *types.Env) (*Program, error) {
	t, err := syntax.ParseProgram(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	return &Program{Term: t, Env: env}, nil
}

// Check infers the program's minimal type (Fig. 4). The result is cached.
func (p *Program) Check() (types.Type, error) {
	if p.typ != nil {
		return p.typ, nil
	}
	t, err := typecheck.Infer(p.Env, p.Term)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	p.typ = t
	return t, nil
}

// CheckAgainst verifies the program against a declared type via
// subsumption ([t-⩽]).
func (p *Program) CheckAgainst(want types.Type) error {
	got, err := p.Check()
	if err != nil {
		return err
	}
	if !types.Subtype(p.Env, got, want) {
		return fmt.Errorf("typecheck: inferred type %s is not a subtype of declared type %s", got, want)
	}
	return nil
}

// Verify model-checks a Fig. 7 property of the program's type
// (Thm. 4.10): if it holds, every productive implementation of the type —
// this program included — satisfies the property at run time.
func (p *Program) Verify(prop verify.Property) (*verify.Outcome, error) {
	t, err := p.Check()
	if err != nil {
		return nil, err
	}
	return verify.Verify(verify.Request{Env: p.Env, Type: t, Property: prop})
}

// Run executes the program under the Def. 2.4 semantics for at most
// maxSteps reduction steps, returning the final term.
func (p *Program) Run(maxSteps int) (term.Term, error) {
	if _, err := p.Check(); err != nil {
		return nil, err // only safe (typed) programs are run (Thm. 3.6)
	}
	final, steps := reduce.Eval(p.Term, maxSteps)
	if reduce.IsError(final) {
		return final, fmt.Errorf("run: term reduced to an error after %d steps (this contradicts type safety — please report)", steps)
	}
	return final, nil
}

// VerifyType runs the verification pipeline directly on a type, without
// an implementation — the paper's "unimplemented stub" workflow (§5.1):
// protocols of multiple services can be composed and verified before any
// of them is written.
func VerifyType(env *types.Env, t types.Type, prop verify.Property) (*verify.Outcome, error) {
	return verify.Verify(verify.Request{Env: env, Type: t, Property: prop})
}
