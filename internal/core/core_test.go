package core

import (
	"strings"
	"testing"

	"effpi/internal/term"
	"effpi/internal/types"
	"effpi/internal/verify"
)

const pingPongSrc = `
let pinger = fun (self: Chan[Str]) => fun (pongc: OChan[OChan[Str]]) =>
  send(pongc, self, fun (_: Unit) => recv(self, fun (reply: Str) => end))
in
let ponger = fun (self: Chan[OChan[Str]]) =>
  recv(self, fun (replyTo: OChan[Str]) =>
    send(replyTo, "Hi!", fun (_: Unit) => end))
in
let y = chan[Str]() in
let z = chan[OChan[Str]]() in
(pinger y z || ponger z)
`

func TestPipelineParseCheckRun(t *testing.T) {
	p, err := Parse(pingPongSrc)
	if err != nil {
		t.Fatal(err)
	}
	ty, err := p.Check()
	if err != nil {
		t.Fatal(err)
	}
	if err := types.CheckProcType(p.Env, ty); err != nil {
		t.Fatalf("program type must be a π-type: %v", err)
	}
	final, err := p.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := final.(term.End); !ok {
		t.Errorf("ping-pong must run to end, got %s", final)
	}
}

func TestPipelineVerify(t *testing.T) {
	env := types.EnvOf(
		"y", types.ChanIO{Elem: types.Str{}},
		"z", types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}},
	)
	p, err := ParseInEnv(`
let pinger = fun (self: Chan[Str]) => fun (pongc: OChan[OChan[Str]]) =>
  send(pongc, self, fun (_: Unit) => recv(self, fun (reply: Str) => end))
in
let ponger = fun (self: Chan[OChan[Str]]) =>
  recv(self, fun (replyTo: OChan[Str]) =>
    send(replyTo, "Hi!", fun (_: Unit) => end))
in (pinger y z || ponger z)
`, env)
	if err != nil {
		t.Fatal(err)
	}
	o, err := p.Verify(verify.Property{Kind: verify.Responsive, From: "z", Closed: true})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds {
		t.Errorf("composed ping-pong must be responsive on z: %+v", o.Counterexample)
	}
}

func TestCheckAgainst(t *testing.T) {
	p, err := Parse(`fun (x: Int) => x + 1`)
	if err != nil {
		t.Fatal(err)
	}
	want := types.Pi{Var: "x", Dom: types.Int{}, Cod: types.Int{}}
	if err := p.CheckAgainst(want); err != nil {
		t.Errorf("CheckAgainst: %v", err)
	}
	wrong := types.Pi{Var: "x", Dom: types.Int{}, Cod: types.Bool{}}
	if err := p.CheckAgainst(wrong); err == nil {
		t.Error("CheckAgainst must reject a wrong declared type")
	}
}

func TestIllTypedProgramRejected(t *testing.T) {
	cases := []string{
		`send(42, 1, fun (_: Unit) => end)`,      // send on non-channel
		`!"hello"`,                               // negation of a string
		`(fun (x: Int) => x) true`,               // argument mismatch
		`1 || end`,                               // value in parallel
		`recv(chan[Int](), fun (s: Str) => end)`, // payload/domain mismatch
	}
	for _, src := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Errorf("%q should parse: %v", src, err)
			continue
		}
		if _, err := p.Check(); err == nil {
			t.Errorf("%q must be ill-typed", src)
		}
	}
}

func TestRunRequiresTyping(t *testing.T) {
	p, err := Parse(`(fun (x: Int) => x) true`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(100); err == nil {
		t.Error("Run must refuse ill-typed programs")
	}
}

func TestVerifyTypeStubWorkflow(t *testing.T) {
	// §5.1: protocols can be composed and verified before implementation.
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	stub := types.Rec{Var: "t", Body: types.In{Ch: types.Var{Name: "x"},
		Cont: types.Pi{Var: "v", Dom: types.Int{}, Cod: types.RecVar{Name: "t"}}}}
	o, err := VerifyType(env, stub, verify.Property{Kind: verify.Reactive, From: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds {
		t.Error("the reactive stub protocol must verify without an implementation")
	}
}

func TestParseErrorsSurfacePositions(t *testing.T) {
	_, err := Parse("let x = in x")
	if err == nil {
		t.Fatal("expected parse error")
	}
	if !strings.Contains(err.Error(), ":") {
		t.Errorf("parse errors must carry positions: %v", err)
	}
}
