package core

import (
	"os"
	"path/filepath"
	"testing"

	"effpi/internal/term"
)

// TestShippedEpiExamples parses, type-checks and runs every .epi file
// under examples/epi — the programs shipped for the CLI.
func TestShippedEpiExamples(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "epi")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("examples/epi not found: %v", err)
	}
	ran := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".epi" {
			continue
		}
		ran++
		t.Run(e.Name(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			p, err := Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, err := p.Check(); err != nil {
				t.Fatalf("typecheck: %v", err)
			}
			final, err := p.Run(100_000)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			// Programs either terminate at end or park waiting for more
			// input; they never produce errors (Thm. 3.6).
			_ = final
		})
	}
	if ran < 3 {
		t.Errorf("expected at least 3 shipped .epi examples, found %d", ran)
	}
}

// TestMobileCodeEpiTerminatesPartially: the mobile-code server consumes
// both produced pairs; the filter then waits for more input forever.
func TestMobileCodeEpiTerminatesPartially(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "epi", "mobilecode.epi"))
	if err != nil {
		t.Skip(err)
	}
	p, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	final, err := p.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	// The residue is the re-armed filter (a recv), possibly composed
	// with end.
	if _, done := final.(term.End); done {
		t.Error("the Tm-typed filter loops forever; the residue should be its pending recv")
	}
}
