package runtime

import (
	"sync/atomic"
	"testing"
)

func engines() []Engine {
	return []Engine{
		NewScheduler(4, PolicyDefault),
		NewScheduler(4, PolicyChannelFSM),
		NewGoEngine(),
	}
}

func TestPingPongDelivery(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			ping := e.NewChan()
			pong := e.NewChan()
			var got atomic.Value
			sender := Send{Ch: ping, Val: "hello", Cont: func() Proc {
				return Recv{Ch: pong, Cont: func(v any) Proc {
					got.Store(v)
					return End{}
				}}
			}}
			echo := Recv{Ch: ping, Cont: func(v any) Proc {
				return Send{Ch: pong, Val: v.(string) + "!", Cont: func() Proc { return End{} }}
			}}
			e.Run(sender, echo)
			if got.Load() != "hello!" {
				t.Errorf("got %v, want hello!", got.Load())
			}
		})
	}
}

func TestFIFOOrdering(t *testing.T) {
	// Messages from a single sender arrive in order.
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			const n = 1000
			ch := e.NewChan()
			var sum, count int64
			var lastOK atomic.Bool
			lastOK.Store(true)

			var sendFrom func(i int) Proc
			sendFrom = func(i int) Proc {
				if i == n {
					return End{}
				}
				return Send{Ch: ch, Val: i, Cont: func() Proc { return sendFrom(i + 1) }}
			}
			prev := -1
			var recvN func(i int) Proc
			recvN = func(i int) Proc {
				if i == n {
					return End{}
				}
				return Recv{Ch: ch, Cont: func(v any) Proc {
					x := v.(int)
					if x != prev+1 {
						lastOK.Store(false)
					}
					prev = x
					atomic.AddInt64(&sum, int64(x))
					atomic.AddInt64(&count, 1)
					return recvN(i + 1)
				}}
			}
			e.Run(sendFrom(0), recvN(0))
			if count != n {
				t.Fatalf("received %d messages, want %d", count, n)
			}
			if !lastOK.Load() {
				t.Error("messages out of order")
			}
			if sum != n*(n-1)/2 {
				t.Errorf("sum = %d, want %d", sum, n*(n-1)/2)
			}
		})
	}
}

func TestManyProcesses(t *testing.T) {
	// A fork-join with 100k processes: cheap under the continuation
	// schedulers, heavier (but correct) under goroutines.
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			const n = 100_000
			done := e.NewChan()
			var received int64
			procs := make([]Proc, 0, n+1)
			for i := 0; i < n; i++ {
				procs = append(procs, Send{Ch: done, Val: struct{}{}, Cont: func() Proc { return End{} }})
			}
			var collect func(i int) Proc
			collect = func(i int) Proc {
				if i == n {
					return End{}
				}
				return Recv{Ch: done, Cont: func(any) Proc {
					atomic.AddInt64(&received, 1)
					return collect(i + 1)
				}}
			}
			procs = append(procs, collect(0))
			e.Run(procs...)
			if received != n {
				t.Errorf("received %d signals, want %d", received, n)
			}
		})
	}
}

func TestParSpawns(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			var hits int64
			leaf := func() Proc {
				return Eval{Run: func() Proc {
					atomic.AddInt64(&hits, 1)
					return End{}
				}}
			}
			e.Run(Par{Procs: []Proc{leaf(), leaf(), Par{Procs: []Proc{leaf(), leaf()}}}})
			if hits != 4 {
				t.Errorf("hits = %d, want 4", hits)
			}
		})
	}
}

func TestForeverWithEscape(t *testing.T) {
	// A bounded "forever": loop until a counter runs out, then End.
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			n := 0
			p := Forever(func(loop func() Proc) Proc {
				return Eval{Run: func() Proc {
					n++
					if n >= 10_000 {
						return End{}
					}
					return Eval{Run: loop}
				}}
			})
			e.Run(p)
			if n != 10_000 {
				t.Errorf("iterations = %d, want 10000", n)
			}
		})
	}
}

func TestManyToOneMailbox(t *testing.T) {
	// n producers share one consumer mailbox (the actor pattern).
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			const producers, msgs = 64, 100
			mb := e.NewChan()
			procs := make([]Proc, 0, producers+1)
			for p := 0; p < producers; p++ {
				var send func(i int) Proc
				send = func(i int) Proc {
					if i == msgs {
						return End{}
					}
					return Send{Ch: mb, Val: 1, Cont: func() Proc { return send(i + 1) }}
				}
				procs = append(procs, send(0))
			}
			total := 0
			var recv func(i int) Proc
			recv = func(i int) Proc {
				if i == producers*msgs {
					return End{}
				}
				return Recv{Ch: mb, Cont: func(v any) Proc {
					total += v.(int)
					return recv(i + 1)
				}}
			}
			procs = append(procs, recv(0))
			e.Run(procs...)
			if total != producers*msgs {
				t.Errorf("total = %d, want %d", total, producers*msgs)
			}
		})
	}
}

func TestRunTwice(t *testing.T) {
	// Engines are reusable across Run calls.
	e := NewScheduler(2, PolicyChannelFSM)
	for round := 0; round < 3; round++ {
		ch := e.NewChan()
		ok := false
		e.Run(
			Send{Ch: ch, Val: round, Cont: func() Proc { return End{} }},
			Recv{Ch: ch, Cont: func(v any) Proc {
				ok = v.(int) == round
				return End{}
			}},
		)
		if !ok {
			t.Fatalf("round %d failed", round)
		}
	}
}

func TestBoundedChannelBackpressure(t *testing.T) {
	// A capacity-4 channel with a fast producer and a consumer: all
	// messages arrive, in order, under every engine.
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			const n = 2000
			ch := NewBufChan(4)
			var received int64
			okOrder := true
			prev := -1

			var produce func(i int) Proc
			produce = func(i int) Proc {
				if i == n {
					return End{}
				}
				return Send{Ch: ch, Val: i, Cont: func() Proc { return produce(i + 1) }}
			}
			var consume func(i int) Proc
			consume = func(i int) Proc {
				if i == n {
					return End{}
				}
				return Recv{Ch: ch, Cont: func(v any) Proc {
					x := v.(int)
					if x != prev+1 {
						okOrder = false
					}
					prev = x
					atomic.AddInt64(&received, 1)
					return consume(i + 1)
				}}
			}
			e.Run(produce(0), consume(0))
			if received != n {
				t.Fatalf("received %d, want %d", received, n)
			}
			if !okOrder {
				t.Error("messages out of order through the bounded buffer")
			}
		})
	}
}

func TestBoundedChannelCapacityOne(t *testing.T) {
	// Capacity 1 behaves like an alternating hand-off.
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			ch := NewBufChan(1)
			total := 0
			var produce func(i int) Proc
			produce = func(i int) Proc {
				if i == 100 {
					return End{}
				}
				return Send{Ch: ch, Val: 1, Cont: func() Proc { return produce(i + 1) }}
			}
			var consume func(i int) Proc
			consume = func(i int) Proc {
				if i == 100 {
					return End{}
				}
				return Recv{Ch: ch, Cont: func(v any) Proc {
					total += v.(int)
					return consume(i + 1)
				}}
			}
			e.Run(produce(0), consume(0))
			if total != 100 {
				t.Errorf("total = %d, want 100", total)
			}
		})
	}
}

func TestManyProducersBoundedChannel(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			const producers, msgs = 32, 50
			ch := NewBufChan(2)
			var total int64
			procs := make([]Proc, 0, producers+1)
			for p := 0; p < producers; p++ {
				var send func(i int) Proc
				send = func(i int) Proc {
					if i == msgs {
						return End{}
					}
					return Send{Ch: ch, Val: 1, Cont: func() Proc { return send(i + 1) }}
				}
				procs = append(procs, send(0))
			}
			var recv func(i int) Proc
			recv = func(i int) Proc {
				if i == producers*msgs {
					return End{}
				}
				return Recv{Ch: ch, Cont: func(v any) Proc {
					atomic.AddInt64(&total, 1)
					return recv(i + 1)
				}}
			}
			procs = append(procs, recv(0))
			e.Run(procs...)
			if total != producers*msgs {
				t.Errorf("total = %d, want %d", total, producers*msgs)
			}
		})
	}
}
