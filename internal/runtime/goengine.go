package runtime

import "sync"

// GoEngine executes each process in its own goroutine, with blocking
// channel operations. It is the repository's stand-in for Akka Typed
// (DESIGN.md §1): one schedulable entity per process on a preemptive
// M:N scheduler, with per-channel FIFO mailboxes.
type GoEngine struct{}

// NewGoEngine builds the goroutine-per-process engine.
func NewGoEngine() *GoEngine { return &GoEngine{} }

// Name implements Engine.
func (*GoEngine) Name() string { return "goroutine" }

// NewChan implements Engine.
func (*GoEngine) NewChan() *Chan { return &Chan{} }

// Run implements Engine.
func (e *GoEngine) Run(procs ...Proc) {
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go e.exec(p, &wg)
	}
	wg.Wait()
}

func (e *GoEngine) exec(p Proc, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		switch pp := p.(type) {
		case End:
			return
		case Eval:
			p = pp.Run()
		case Par:
			if len(pp.Procs) == 0 {
				return
			}
			for _, q := range pp.Procs[1:] {
				wg.Add(1)
				go e.exec(q, wg)
			}
			p = pp.Procs[0]
		case Send:
			ch := pp.Ch
			ch.mu.Lock()
			cond := ch.ensureCond()
			for ch.full() {
				cond.Wait()
			}
			ch.buf.push(pp.Val)
			ch.mu.Unlock()
			cond.Broadcast()
			p = pp.Cont()
		case Recv:
			ch := pp.Ch
			ch.mu.Lock()
			cond := ch.ensureCond()
			for ch.buf.len() == 0 {
				cond.Wait()
			}
			v, _ := ch.buf.pop()
			ch.mu.Unlock()
			cond.Broadcast()
			p = pp.Cont(v)
		default:
			panic("runtime: unknown process")
		}
	}
}
