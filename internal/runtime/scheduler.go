package runtime

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Policy selects how a matched send/receive pair is continued.
type Policy int

const (
	// PolicyDefault reschedules both continuations through the run queue
	// (maximal yielding — the paper's "Effpi default").
	PolicyDefault Policy = iota
	// PolicyChannelFSM continues the receiver immediately on the current
	// worker when a send finds a parked receiver, avoiding two queue
	// round-trips per message (the paper's "Effpi with channel FSM").
	PolicyChannelFSM
)

func (p Policy) String() string {
	if p == PolicyChannelFSM {
		return "fsm"
	}
	return "default"
}

// Scheduler is the Effpi runtime: Workers OS-level executors running
// parked process continuations from a shared run queue.
type Scheduler struct {
	policy  Policy
	workers int

	mu       sync.Mutex
	notEmpty *sync.Cond
	queue    []Proc
	closed   bool

	live atomic.Int64
	done chan struct{}
}

// NewScheduler builds a scheduler engine. workers ≤ 0 selects GOMAXPROCS.
func NewScheduler(workers int, policy Policy) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{policy: policy, workers: workers}
	s.notEmpty = sync.NewCond(&s.mu)
	return s
}

// Name implements Engine.
func (s *Scheduler) Name() string { return fmt.Sprintf("effpi-%s", s.policy) }

// NewChan implements Engine.
func (s *Scheduler) NewChan() *Chan { return &Chan{} }

// Run implements Engine: execute the processes until every process has
// reached End (or parked forever on a channel nobody will ever send to —
// in that case Run returns once no runnable work remains and no live
// process can make progress is NOT detected; Run tracks termination by
// live-count reaching zero, so leaked processes keep Run blocked, as a
// leaked actor would).
func (s *Scheduler) Run(procs ...Proc) {
	s.done = make(chan struct{})
	s.live.Store(int64(len(procs)))
	if len(procs) == 0 {
		return
	}
	s.mu.Lock()
	s.closed = false
	s.queue = append(s.queue[:0], procs...)
	s.mu.Unlock()
	s.notEmpty.Broadcast()

	var wg sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker()
		}()
	}
	<-s.done
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.notEmpty.Broadcast()
	wg.Wait()
}

// schedule enqueues a runnable continuation.
func (s *Scheduler) schedule(p Proc) {
	s.mu.Lock()
	s.queue = append(s.queue, p)
	s.mu.Unlock()
	s.notEmpty.Signal()
}

// finish records the termination of one live process.
func (s *Scheduler) finish() {
	if s.live.Add(-1) == 0 {
		close(s.done)
	}
}

func (s *Scheduler) worker() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.notEmpty.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		p := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.exec(p)
	}
}

// stepBudget bounds the number of inline steps a worker spends on one
// process before re-queuing it, so that long Eval loops cannot starve
// parked peers (the scheduler stays non-preemptive but fair-ish).
const stepBudget = 4096

// exec runs one process until it parks, terminates, or exhausts its
// step budget.
func (s *Scheduler) exec(p Proc) {
	for budget := stepBudget; ; budget-- {
		if budget <= 0 {
			s.schedule(p)
			return
		}
		switch pp := p.(type) {
		case End:
			s.finish()
			return

		case Eval:
			p = pp.Run()

		case Par:
			if len(pp.Procs) == 0 {
				s.finish()
				return
			}
			// The current process becomes the first component; siblings
			// are new live processes.
			s.live.Add(int64(len(pp.Procs) - 1))
			for _, q := range pp.Procs[1:] {
				s.schedule(q)
			}
			p = pp.Procs[0]

		case Send:
			p = s.execSend(pp)
			if p == nil {
				return
			}

		case Recv:
			next, parked := s.execRecv(pp)
			if parked {
				return
			}
			p = next

		default:
			panic(fmt.Sprintf("runtime: unknown process %T", p))
		}
	}
}

// execSend delivers the message. It returns the process to continue with
// on this worker, or nil if the current process was rescheduled.
func (s *Scheduler) execSend(snd Send) Proc {
	ch := snd.Ch
	ch.mu.Lock()
	if len(ch.waiters) > 0 {
		w := ch.waiters[0]
		copy(ch.waiters, ch.waiters[1:])
		ch.waiters = ch.waiters[:len(ch.waiters)-1]
		ch.mu.Unlock()
		if s.policy == PolicyChannelFSM {
			// Fast path: continue the receiver inline, requeue our own
			// continuation.
			s.schedule(Eval{Run: snd.Cont})
			return w(snd.Val)
		}
		// Default: both go through the queue; this worker yields.
		s.schedule(w(snd.Val))
		s.schedule(Eval{Run: snd.Cont})
		return nil
	}
	if ch.full() {
		// Bounded channel with no space: park the sender until a
		// receiver drains the buffer.
		ch.senders = append(ch.senders, parkedSend{val: snd.Val, cont: snd.Cont})
		ch.mu.Unlock()
		return nil
	}
	ch.buf.push(snd.Val)
	ch.mu.Unlock()
	if s.policy == PolicyChannelFSM {
		return snd.Cont()
	}
	// Default policy: yield at outputs too (§5.1: "processes yield
	// control both when waiting for inputs and also when sending").
	s.schedule(Eval{Run: snd.Cont})
	return nil
}

// execRecv consumes a buffered message or parks the continuation. When a
// bounded channel frees a slot, one parked sender is admitted.
func (s *Scheduler) execRecv(rcv Recv) (next Proc, parked bool) {
	ch := rcv.Ch
	ch.mu.Lock()
	if v, ok := ch.buf.pop(); ok {
		if len(ch.senders) > 0 {
			ps := ch.senders[0]
			copy(ch.senders, ch.senders[1:])
			ch.senders = ch.senders[:len(ch.senders)-1]
			ch.buf.push(ps.val)
			ch.mu.Unlock()
			s.schedule(Eval{Run: ps.cont})
			return rcv.Cont(v), false
		}
		ch.mu.Unlock()
		return rcv.Cont(v), false
	}
	ch.waiters = append(ch.waiters, rcv.Cont)
	ch.mu.Unlock()
	return nil, true
}
