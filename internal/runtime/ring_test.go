package runtime

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRingModelBased compares the growable circular buffer against a
// plain-slice reference model under random push/pop sequences.
func TestRingModelBased(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		r := rand.New(rand.NewSource(seed))
		var ring ring
		var model []any
		for _, op := range opsRaw {
			if op%3 == 0 && len(model) > 0 {
				got, ok := ring.pop()
				if !ok {
					return false
				}
				want := model[0]
				model = model[1:]
				if got != want {
					return false
				}
			} else {
				v := r.Int()
				ring.push(v)
				model = append(model, v)
			}
			if ring.len() != len(model) {
				return false
			}
		}
		// Drain.
		for len(model) > 0 {
			got, ok := ring.pop()
			if !ok || got != model[0] {
				return false
			}
			model = model[1:]
		}
		if _, ok := ring.pop(); ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRingGrowthPreservesOrder(t *testing.T) {
	var r ring
	// Interleave pushes and pops so head wraps before growth.
	for i := 0; i < 3; i++ {
		r.push(i)
	}
	r.pop()
	r.pop()
	for i := 3; i < 20; i++ {
		r.push(i)
	}
	want := 2
	for r.len() > 0 {
		got, _ := r.pop()
		if got != want {
			t.Fatalf("got %v, want %d", got, want)
		}
		want++
	}
}
