// Package runtime implements the Effpi runtime system (§5.1 of the
// paper): a non-preemptive scheduler that multiplexes a potentially very
// large number of processes onto a small pool of worker threads.
//
// As in λπ⩽, input/output actions and their continuations are closures,
// so a process waiting for a message costs one parked continuation on the
// channel — not a blocked thread. The package provides three engines:
//
//   - Scheduler with PolicyDefault: every matched send/receive reschedules
//     both continuations through the run queue (the paper's "Effpi
//     default" runtime);
//   - Scheduler with PolicyChannelFSM: a matched pair continues
//     immediately on the current worker, short-cutting the queue (the
//     paper's "Effpi with channel FSM");
//   - GoEngine: one goroutine per process with blocking channel
//     operations, standing in for Akka Typed as the per-entity-scheduled
//     baseline (see DESIGN.md §1).
package runtime

import "sync"

// Proc is a suspended process: a pure description executed by an Engine.
// Continuations are closures, mirroring the monadic encoding of λπ⩽.
type Proc interface{ proc() }

// End is the terminated process.
type End struct{}

// Send sends Val on Ch and continues as Cont(). Sends are asynchronous
// (channels are unbounded mailboxes, as in actor systems); the scheduler
// may still yield at a send, which is the distinguishing feature of the
// Effpi runtime noted in §5.1.
type Send struct {
	Ch   *Chan
	Val  any
	Cont func() Proc
}

// Recv receives a value from Ch and continues as Cont(v).
type Recv struct {
	Ch   *Chan
	Cont func(any) Proc
}

// Par runs the component processes concurrently.
type Par struct{ Procs []Proc }

// Eval performs a computation step and continues as its result; it is
// the λ-fragment of the calculus (used for loops and local work).
type Eval struct{ Run func() Proc }

func (End) proc()  {}
func (Send) proc() {}
func (Recv) proc() {}
func (Par) proc()  {}
func (Eval) proc() {}

// Seq builds the "and then" combinator ">>" of Fig. 1: run a send, then
// continue as next.
func Seq(s Send, next func() Proc) Proc {
	return Send{Ch: s.Ch, Val: s.Val, Cont: next}
}

// Forever builds an infinite loop: body is re-instantiated each
// iteration; the argument passed to body continues the loop.
func Forever(body func(loop func() Proc) Proc) Proc {
	var loop func() Proc
	loop = func() Proc { return body(loop) }
	return Eval{Run: loop}
}

// Engine executes processes to completion.
type Engine interface {
	// NewChan creates a channel usable with this engine.
	NewChan() *Chan
	// Run executes the processes and blocks until all of them (and all
	// processes they spawn) have terminated.
	Run(procs ...Proc)
	// Name identifies the engine in benchmark output.
	Name() string
}

// Chan is an asynchronous channel (a mailbox), unbounded by default.
// A positive capacity bounds the buffer: senders park (scheduler
// engines) or block (goroutine engine) while it is full — the paper's
// "buffered channels" extension of §5.1. Under the scheduler engines,
// waiting processes park their continuation on the channel; under the
// goroutine engine they block on a condition variable.
type Chan struct {
	mu  sync.Mutex
	cap int // ≤ 0 means unbounded
	buf ring
	// waiters are parked receive continuations (scheduler engines).
	waiters []func(any) Proc
	// senders are parked send continuations waiting for buffer space.
	senders []parkedSend
	// cond signals blocked goroutines (goroutine engine); lazily created.
	cond *sync.Cond
}

type parkedSend struct {
	val  any
	cont func() Proc
}

// NewChan creates an unbounded channel (engine-agnostic).
func NewChan() *Chan { return &Chan{} }

// NewBufChan creates a channel with a bounded buffer of the given
// capacity; capacity ≤ 0 means unbounded.
func NewBufChan(capacity int) *Chan { return &Chan{cap: capacity} }

// full reports whether a bounded channel has no buffer space; callers
// hold c.mu.
func (c *Chan) full() bool { return c.cap > 0 && c.buf.len() >= c.cap }

// ensureCond lazily creates the goroutine-engine condition variable;
// callers hold c.mu.
func (c *Chan) ensureCond() *sync.Cond {
	if c.cond == nil {
		c.cond = sync.NewCond(&c.mu)
	}
	return c.cond
}

// ring is a cheap FIFO of values backed by a growable circular buffer.
type ring struct {
	items []any
	head  int
	n     int
}

func (r *ring) push(v any) {
	if r.n == len(r.items) {
		grown := make([]any, max(4, 2*len(r.items)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.items[(r.head+i)%len(r.items)]
		}
		r.items = grown
		r.head = 0
	}
	r.items[(r.head+r.n)%len(r.items)] = v
	r.n++
}

func (r *ring) pop() (any, bool) {
	if r.n == 0 {
		return nil, false
	}
	v := r.items[r.head]
	r.items[r.head] = nil
	r.head = (r.head + 1) % len(r.items)
	r.n--
	return v, true
}

func (r *ring) len() int { return r.n }
